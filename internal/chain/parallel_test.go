package chain

// Differential tests proving the parallel execution engine is
// observationally identical to serial execution: same receipts, same gas,
// same state root, for random mixes of conflicting, non-conflicting,
// contract-calling and invalid transactions.

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"contractshard/internal/contract"
	"contractshard/internal/crypto"
	"contractshard/internal/types"
)

const fuzzTrials = 25

// twinChains builds two chains over identical genesis data, one configured
// for serial execution and one for the parallel engine.
func twinChains(t *testing.T, alloc map[types.Address]uint64, code map[types.Address][]byte) (serial, parallel *Chain) {
	t.Helper()
	mk := func(workers int) *Chain {
		cfg := testConfig(1)
		cfg.ExecWorkers = workers
		cfg.MaxBlockTxs = 1 << 16
		cfg.GasLimit = math.MaxUint64
		c, err := NewWithContracts(cfg, alloc, code)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	serial, parallel = mk(0), mk(8)
	if serial.Genesis().Hash() != parallel.Genesis().Hash() {
		t.Fatal("execution engine choice leaked into the genesis block")
	}
	return serial, parallel
}

// TestProcessDifferentialFuzz runs random transaction mixes through both
// engines and requires bit-identical outcomes. Each trial varies the
// signers, the coinbase (sometimes itself a signer, exercising the fee
// delta's fold-on-observation path), and the transaction blend: plain
// transfers, storage-hotspot contract calls, branchy conditional
// transfers, wrong-nonce and value+fee-wraparound invalids.
func TestProcessDifferentialFuzz(t *testing.T) {
	counterAddr := types.BytesToAddress([]byte{0xEE})
	condAddr := types.BytesToAddress([]byte{0xEF})
	sinkAddr := types.BytesToAddress([]byte{0xED})

	for trial := 0; trial < fuzzTrials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)*7919 + 1))

			signers := make([]*crypto.Keypair, 6)
			alloc := make(map[types.Address]uint64)
			for i := range signers {
				signers[i] = crypto.KeypairFromSeed(fmt.Sprintf("fuzz-%d-%d", trial, i))
				alloc[signers[i].Address()] = 1_000_000
			}
			// The conditional-transfer contract needs escrow to forward and
			// the threshold decides how often it reverts.
			alloc[condAddr] = 10_000
			coinbase := types.BytesToAddress([]byte{0xA1})
			if trial%3 == 0 {
				// A signer that mines its own fees: every fee credit targets
				// an account the engine also reads and writes directly.
				coinbase = signers[0].Address()
			}
			code := map[types.Address][]byte{
				counterAddr: contract.CounterContract(),
				condAddr:    contract.ConditionalTransfer(sinkAddr, uint64(200+rng.Intn(400))),
			}

			serialC, parallelC := twinChains(t, alloc, code)

			nonces := make(map[types.Address]uint64)
			n := 20 + rng.Intn(60)
			txs := make([]*types.Transaction, 0, n)
			for i := 0; i < n; i++ {
				from := signers[rng.Intn(len(signers))]
				tx := &types.Transaction{
					Nonce: nonces[from.Address()],
					From:  from.Address(),
					Fee:   uint64(1 + rng.Intn(5)),
				}
				bump := true
				switch k := rng.Intn(10); {
				case k < 4: // plain transfer, sometimes to another signer or the coinbase
					switch rng.Intn(3) {
					case 0:
						tx.To = signers[rng.Intn(len(signers))].Address()
					case 1:
						tx.To = coinbase
					default:
						tx.To = types.BytesToAddress([]byte{byte(0x40 + rng.Intn(8))})
					}
					tx.Value = uint64(rng.Intn(500))
				case k < 6: // storage hotspot: every call bumps the same slot
					tx.To = counterAddr
					tx.Value = uint64(rng.Intn(10))
				case k < 8: // branchy: reverts once the sink fills past the threshold
					tx.To = condAddr
					tx.Value = uint64(1 + rng.Intn(50))
				case k < 9: // wrong nonce: invalid, state nonce must not move
					tx.To = sinkAddr
					tx.Nonce += 1000
					bump = false
				default: // value+fee wraps uint64: the solvency-overflow regression
					tx.To = sinkAddr
					tx.Value = math.MaxUint64 - uint64(rng.Intn(3))
					tx.Fee = uint64(1000 + rng.Intn(1000))
					bump = false
				}
				if err := crypto.SignTx(tx, from); err != nil {
					t.Fatal(err)
				}
				if bump {
					nonces[from.Address()]++
				}
				txs = append(txs, tx)
			}

			stS, stP := serialC.HeadState(), parallelC.HeadState()
			rsS, gasS, errS := serialC.process(stS, txs, coinbase)
			rsP, gasP, errP := parallelC.process(stP, txs, coinbase)
			if errS != nil || errP != nil {
				t.Fatalf("process errors: serial %v parallel %v", errS, errP)
			}
			if gasS != gasP {
				t.Fatalf("gas diverges: serial %d parallel %d", gasS, gasP)
			}
			if !reflect.DeepEqual(rsS, rsP) {
				for i := range rsS {
					if !reflect.DeepEqual(rsS[i], rsP[i]) {
						t.Errorf("receipt %d diverges:\nserial   %+v\nparallel %+v", i, rsS[i], rsP[i])
					}
				}
				t.Fatal("receipts diverge")
			}
			if stS.Root() != stP.Root() {
				t.Fatalf("state roots diverge: serial %s parallel %s", stS.Root(), stP.Root())
			}
		})
	}
}

// TestBuildBlockCrossEngineInterchange proves blocks are interchangeable
// between nodes running different engines: a block produced by a serial
// node validates on a parallel node and vice versa, and both producers
// build the identical block from identical inputs.
func TestBuildBlockCrossEngineInterchange(t *testing.T) {
	counterAddr := types.BytesToAddress([]byte{0xEE})
	alice := crypto.KeypairFromSeed("interchange-alice")
	bob := crypto.KeypairFromSeed("interchange-bob")
	alloc := map[types.Address]uint64{
		alice.Address(): 1_000_000,
		bob.Address():   1_000_000,
	}
	code := map[types.Address][]byte{counterAddr: contract.CounterContract()}
	serialC, parallelC := twinChains(t, alloc, code)
	miner := types.BytesToAddress([]byte{0xA1})

	nonces := make(map[types.Address]uint64)
	mkTxs := func(t *testing.T) []*types.Transaction {
		t.Helper()
		var txs []*types.Transaction
		for i, from := range []*crypto.Keypair{alice, bob, alice, bob, alice} {
			to := counterAddr
			if i%2 == 1 {
				to = types.BytesToAddress([]byte{0x40})
			}
			tx := &types.Transaction{
				Nonce: nonces[from.Address()], From: from.Address(),
				To: to, Value: uint64(10 + i), Fee: 2,
			}
			if err := crypto.SignTx(tx, from); err != nil {
				t.Fatal(err)
			}
			nonces[from.Address()]++
			txs = append(txs, tx)
		}
		// One invalid transaction the producer must drop on both engines.
		bad := &types.Transaction{
			Nonce: 999, From: alice.Address(), To: counterAddr, Value: 1, Fee: 1,
		}
		if err := crypto.SignTx(bad, alice); err != nil {
			t.Fatal(err)
		}
		return append(txs, bad)
	}

	for round := 0; round < 3; round++ {
		txs := mkTxs(t)
		// Alternate which engine produces the block.
		producer, validator := serialC, parallelC
		if round%2 == 1 {
			producer, validator = parallelC, serialC
		}
		blk, _, err := producer.BuildBlock(miner, txs, uint64(1000+round))
		if err != nil {
			t.Fatal(err)
		}
		if len(blk.Txs) != 5 {
			t.Fatalf("round %d: producer included %d txs, want 5", round, len(blk.Txs))
		}
		// The other engine must build the byte-identical block from the
		// same inputs (PoW search is deterministic).
		blk2, _, err := validator.BuildBlock(miner, txs, uint64(1000+round))
		if err != nil {
			t.Fatal(err)
		}
		if blk.Hash() != blk2.Hash() {
			t.Fatalf("round %d: engines build different blocks: %s vs %s", round, blk.Hash(), blk2.Hash())
		}
		if err := serialC.AddBlock(blk); err != nil {
			t.Fatalf("round %d: serial validator rejected block: %v", round, err)
		}
		if err := parallelC.AddBlock(blk); err != nil {
			t.Fatalf("round %d: parallel validator rejected block: %v", round, err)
		}
		if serialC.Head().Hash() != parallelC.Head().Hash() {
			t.Fatalf("round %d: heads diverge", round)
		}
	}
	st := parallelC.HeadState()
	if got := st.GetStorage(counterAddr, contract.WordFromU64(0).Bytes()); len(got) == 0 {
		t.Fatal("counter contract never executed across the interchange rounds")
	}
}
