package chain

import (
	"errors"
	"fmt"

	"contractshard/internal/types"
)

// Query/export helpers: inclusion proofs for light verification across
// shards, and ledger export/import for node bootstrap.

// ErrTxNotFound is returned when a transaction is not on the canonical chain.
var ErrTxNotFound = errors.New("chain: transaction not found on canonical chain")

// FindTx locates a transaction on the canonical chain, returning its block
// and position. Served from the tx index: inclusions on losing forks are
// skipped, so a transaction mined only on a non-canonical branch is "not
// found" until fork choice makes its branch canonical.
func (c *Chain) FindTx(h types.Hash) (*types.Block, int, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, ref := range c.txIndex[h] {
		e := c.blocks[ref.block]
		if c.isCanonical(e.block) {
			return e.block, ref.index, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: %s", ErrTxNotFound, h)
}

// ProveInclusion builds a Merkle inclusion proof for the transaction against
// its block header — the artifact a user hands to a party in another shard
// to demonstrate confirmation without shipping the ledger.
func (c *Chain) ProveInclusion(h types.Hash) (*types.TxInclusionProof, *types.Header, error) {
	block, idx, err := c.FindTx(h)
	if err != nil {
		return nil, nil, err
	}
	proof, err := types.BuildTxProof(block.Txs, idx)
	if err != nil {
		return nil, nil, err
	}
	return proof, block.Header, nil
}

// Export returns the canonical chain as encoded blocks, genesis first. The
// result is self-contained for Import given the same genesis configuration.
func (c *Chain) Export() [][]byte {
	blocks := c.CanonicalBlocks()
	out := make([][]byte, len(blocks))
	for i, b := range blocks {
		out[i] = b.Encode()
	}
	return out
}

// BlocksByRange returns up to count consecutive canonical blocks starting
// at number from, encoded, ascending. The range is clipped at the head; a
// from past the head (or a non-positive count) yields nil, never an error —
// a peer asking beyond our chain simply learns we have nothing for it.
// from == 0 includes the genesis block.
func (c *Chain) BlocksByRange(from uint64, count int) [][]byte {
	if count <= 0 {
		return nil
	}
	// Snapshot just the requested block pointers from the number index;
	// encoding happens outside the lock (blocks are immutable).
	c.mu.RLock()
	head := uint64(len(c.canon) - 1)
	if from > head {
		c.mu.RUnlock()
		return nil
	}
	end := from + uint64(count)
	if end > head+1 {
		end = head + 1
	}
	blocks := make([]*types.Block, 0, end-from)
	for n := from; n < end; n++ {
		blocks = append(blocks, c.blocks[c.canon[n].hash].block)
	}
	c.mu.RUnlock()
	out := make([][]byte, len(blocks))
	for i, b := range blocks {
		out[i] = b.Encode()
	}
	return out
}

// Locator summarizes the canonical chain as a sparse list of block hashes,
// newest first: the most recent 8 blocks step by one, then the step doubles
// back to genesis (geth's skeleton locator). A peer intersects it with its
// own canonical chain to find the fork point without either side shipping
// full headers.
func (c *Chain) Locator() []types.Hash {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var loc []types.Hash
	step := 1
	for i := len(c.canon) - 1; i > 0; i -= step {
		loc = append(loc, c.canon[i].hash)
		if len(loc) >= 8 {
			step *= 2
		}
	}
	return append(loc, c.canon[0].hash)
}

// CommonAncestor returns the number of the newest locator entry that lies
// on this chain's canonical chain. The bool is false when nothing matches —
// the peer's chain shares no block with ours, not even genesis, so serving
// it anything would be meaningless.
func (c *Chain) CommonAncestor(locator []types.Hash) (uint64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, h := range locator {
		if e, ok := c.blocks[h]; ok && c.isCanonical(e.block) {
			return e.block.Number(), true
		}
	}
	return 0, false
}

// Import errors.
var (
	ErrEmptyImport      = errors.New("chain: nothing to import")
	ErrGenesisMismatch  = errors.New("chain: imported genesis does not match configuration")
	ErrImportBlockError = errors.New("chain: imported block rejected")
)

// Import reconstructs a chain from an Export dump, fully re-validating
// every block (PoW, roots, transactions) against a freshly built genesis —
// a new node bootstrapping a shard ledger trusts nothing in the dump.
func Import(cfg Config, alloc map[types.Address]uint64, contracts map[types.Address][]byte, dump [][]byte) (*Chain, error) {
	if len(dump) == 0 {
		return nil, ErrEmptyImport
	}
	var (
		c   *Chain
		err error
	)
	if len(contracts) > 0 {
		c, err = NewWithContracts(cfg, alloc, contracts)
	} else {
		c, err = New(cfg, alloc)
	}
	if err != nil {
		return nil, err
	}
	first, err := types.DecodeBlock(dump[0])
	if err != nil {
		return nil, fmt.Errorf("chain: import genesis: %w", err)
	}
	if first.Hash() != c.Genesis().Hash() {
		return nil, fmt.Errorf("%w: dump %s, built %s", ErrGenesisMismatch, first.Hash(), c.Genesis().Hash())
	}
	for i, raw := range dump[1:] {
		block, err := types.DecodeBlock(raw)
		if err != nil {
			return nil, fmt.Errorf("chain: import block %d: %w", i+1, err)
		}
		if err := c.AddBlock(block); err != nil {
			return nil, fmt.Errorf("%w: block %d: %v", ErrImportBlockError, i+1, err)
		}
	}
	return c, nil
}
