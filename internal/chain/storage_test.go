package chain

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"contractshard/internal/contract"
	"contractshard/internal/crypto"
	"contractshard/internal/state"
	"contractshard/internal/store"
	"contractshard/internal/types"
)

// durableConfig is the storage-test chain configuration: bounded state
// history with a short checkpoint cadence and finality horizon, so every
// storage mechanism exercises within a few dozen blocks.
func durableConfig(shard types.ShardID, s store.Store) Config {
	cfg := testConfig(shard)
	cfg.StateHistory = 3
	cfg.CheckpointInterval = 4
	cfg.FinalityDepth = 6
	cfg.Store = s
	return cfg
}

// durableFixture drives a chain with funded accounts and a storage-using
// counter contract, so persisted state covers balances, nonces, code and
// contract storage.
type durableFixture struct {
	alice    *crypto.Keypair
	bob      *crypto.Keypair
	counter  types.Address
	miner    types.Address
	alloc    map[types.Address]uint64
	code     map[types.Address][]byte
	nonces   map[types.Address]uint64
	lastTime uint64
}

func newDurableFixture() *durableFixture {
	alice := crypto.KeypairFromSeed("durable-alice")
	bob := crypto.KeypairFromSeed("durable-bob")
	counter := types.BytesToAddress([]byte{0xCC})
	return &durableFixture{
		alice:   alice,
		bob:     bob,
		counter: counter,
		miner:   types.BytesToAddress([]byte{0xA1}),
		alloc: map[types.Address]uint64{
			alice.Address(): 10_000_000,
			bob.Address():   10_000_000,
		},
		code:   map[types.Address][]byte{counter: contract.CounterContract()},
		nonces: make(map[types.Address]uint64),
	}
}

func (f *durableFixture) open(t testing.TB, s store.Store) *Chain {
	t.Helper()
	c, err := NewWithContracts(durableConfig(1, s), f.alloc, f.code)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// mine extends the head with one block carrying n transactions alternating
// plain transfers and counter-contract calls.
func (f *durableFixture) mine(t testing.TB, c *Chain, n int) *types.Block {
	t.Helper()
	var txs []*types.Transaction
	for i := 0; i < n; i++ {
		from := f.alice
		if i%2 == 1 {
			from = f.bob
		}
		tx := &types.Transaction{
			Nonce: f.nonces[from.Address()],
			From:  from.Address(),
			To:    f.bob.Address(),
			Value: 10,
			Fee:   1,
		}
		if i%3 == 0 {
			tx.To = f.counter
			tx.Data = []byte{1}
		}
		if err := crypto.SignTx(tx, from); err != nil {
			t.Fatal(err)
		}
		f.nonces[from.Address()]++
		txs = append(txs, tx)
	}
	f.lastTime += 100
	b, _, err := c.BuildBlock(f.miner, txs, f.lastTime)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestReopenRecoversHead: a chain persisted to a FileStore and cleanly
// closed reopens to the identical canonical head (hash and state root) and
// keeps accepting blocks.
func TestReopenRecoversHead(t *testing.T) {
	dir := t.TempDir()
	f := newDurableFixture()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := f.open(t, s)
	for i := 0; i < 20; i++ {
		f.mine(t, c, i%4)
	}
	wantHead := c.Head().Hash()
	wantRoot := c.Head().Header.StateRoot
	wantBalance := c.HeadBalance(f.bob.Address())
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := f.open(t, s2)
	if got := c2.Head().Hash(); got != wantHead {
		t.Fatalf("recovered head %s, want %s", got, wantHead)
	}
	if got := c2.HeadState().Root(); got != wantRoot {
		t.Fatalf("recovered head root %s, want %s", got, wantRoot)
	}
	if got := c2.HeadBalance(f.bob.Address()); got != wantBalance {
		t.Fatalf("recovered balance %d, want %d", got, wantBalance)
	}
	// The recovered chain must stay live: extend it and flush cleanly.
	f.mine(t, c2, 2)
	if c2.Height() != 21 {
		t.Fatalf("height after post-recovery block: %d", c2.Height())
	}
	if err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReopenAfterTornWrite simulates a crash during the final block append:
// the block log is cut at every byte offset inside the last record, and the
// reopened chain must recover to the previous head and keep mining.
func TestReopenAfterTornWrite(t *testing.T) {
	master := t.TempDir()
	f := newDurableFixture()
	s, err := store.Open(master)
	if err != nil {
		t.Fatal(err)
	}
	c := f.open(t, s)
	var prevHead types.Hash
	for i := 0; i < 6; i++ {
		prevHead = c.Head().Hash()
		f.mine(t, c, i%3)
	}
	lastHead := c.Head().Hash()
	// Crash, don't Close: no final snapshot, recovery must replay.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	blockLog, err := os.ReadFile(filepath.Join(master, store.BlocksLogName))
	if err != nil {
		t.Fatal(err)
	}
	stateLog, err := os.ReadFile(filepath.Join(master, store.StateLogName))
	if err != nil {
		t.Fatal(err)
	}
	lastRaw := c.GetBlock(lastHead).Encode()
	lastStart := bytes.LastIndex(blockLog, lastRaw) - 8 // record header precedes payload

	for cut := lastStart; cut < len(blockLog); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, store.BlocksLogName), blockLog[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, store.StateLogName), stateLog, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := store.Open(dir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		c2, err := NewWithContracts(durableConfig(1, s2), f.alloc, f.code)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := c2.Head().Hash(); got != prevHead {
			t.Fatalf("cut %d: recovered head %s, want %s", cut, got, prevHead)
		}
		// The torn block is gone; the chain accepts a replacement.
		nonces := cloneNonces(f.nonces)
		f.nonces = rollbackNonces(c2, f)
		f.mine(t, c2, 1)
		f.nonces = nonces
		if c2.Height() != 6 {
			t.Fatalf("cut %d: height %d after replacement block", cut, c2.Height())
		}
		if err := c2.Close(); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
	}
}

func cloneNonces(m map[types.Address]uint64) map[types.Address]uint64 {
	out := make(map[types.Address]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// rollbackNonces resets the fixture's nonce tracking to the recovered head
// state, since recovery dropped the torn block's transactions.
func rollbackNonces(c *Chain, f *durableFixture) map[types.Address]uint64 {
	st := c.HeadState()
	return map[types.Address]uint64{
		f.alice.Address(): st.GetNonce(f.alice.Address()),
		f.bob.Address():   st.GetNonce(f.bob.Address()),
	}
}

// TestGenesisPinRejectsForeignStore: a datadir written by one chain must be
// refused by a chain with a different genesis.
func TestGenesisPinRejectsForeignStore(t *testing.T) {
	dir := t.TempDir()
	f := newDurableFixture()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := f.open(t, s)
	f.mine(t, c, 0)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	cfg := durableConfig(1, s2)
	if _, err := NewWithContracts(cfg, map[types.Address]uint64{f.alice.Address(): 1}, nil); err == nil {
		t.Fatal("foreign store accepted")
	}
}

// TestStateAtReplayDifferential grows random fork shapes on two chains fed
// identical blocks — one retaining every state (the reference), one with
// bounded history that must replay — and checks that StateAt agrees on
// root, balances, nonces and contract storage for every live block.
func TestStateAtReplayDifferential(t *testing.T) {
	f := newDurableFixture()
	refCfg := testConfig(1) // retain-all, no pruning: the oracle
	ref, err := NewWithContracts(refCfg, f.alloc, f.code)
	if err != nil {
		t.Fatal(err)
	}
	boundedCfg := testConfig(1)
	boundedCfg.StateHistory = 2
	boundedCfg.CheckpointInterval = 3
	boundedCfg.Store = store.NewMem()
	bounded, err := NewWithContracts(boundedCfg, f.alloc, f.code)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	blocks := []*types.Block{ref.Genesis()}
	for step := 0; step < 40; step++ {
		var b *types.Block
		if rng.Intn(10) < 7 || len(blocks) < 3 {
			// Extend the head with a block carrying transactions.
			b = f.mine(t, ref, rng.Intn(3))
		} else {
			// Fork: an empty block off a random recent ancestor.
			parent := blocks[len(blocks)-1-rng.Intn(3)]
			b = buildOn(t, ref, parent, types.BytesToAddress([]byte{byte(step)}), nil, f.lastTime+uint64(step))
			if err := ref.AddBlock(b); err != nil {
				t.Fatal(err)
			}
		}
		if err := bounded.AddBlock(b); err != nil {
			t.Fatalf("step %d: bounded chain rejected block: %v", step, b)
		}
		blocks = append(blocks, b)
		if ref.Head().Hash() != bounded.Head().Hash() {
			t.Fatalf("step %d: fork choice diverged", step)
		}
	}

	slot := make([]byte, 32)
	for _, b := range blocks {
		want := ref.StateAt(b.Hash())
		got := bounded.StateAt(b.Hash())
		if want == nil || got == nil {
			t.Fatalf("block %d %s: StateAt nil (ref=%v bounded=%v)", b.Number(), b.Hash(), want == nil, got == nil)
		}
		if want.Root() != got.Root() {
			t.Fatalf("block %d: root %s != %s", b.Number(), got.Root(), want.Root())
		}
		for _, addr := range []types.Address{f.alice.Address(), f.bob.Address(), f.miner, f.counter} {
			if want.GetBalance(addr) != got.GetBalance(addr) {
				t.Fatalf("block %d: balance of %s diverged", b.Number(), addr)
			}
			if want.GetNonce(addr) != got.GetNonce(addr) {
				t.Fatalf("block %d: nonce of %s diverged", b.Number(), addr)
			}
		}
		if !bytes.Equal(want.GetStorage(f.counter, slot), got.GetStorage(f.counter, slot)) {
			t.Fatalf("block %d: contract storage diverged", b.Number())
		}
	}
}

// TestForkStatePruning: with a finality depth configured (and no Store —
// pure memory mode), losing-fork entries buried past the horizon are
// reclaimed entirely: block, state and transaction-index references.
func TestForkStatePruning(t *testing.T) {
	f := newFixture(t)
	cfg := testConfig(1)
	cfg.FinalityDepth = 3
	c, err := New(cfg, map[types.Address]uint64{f.alice.Address(): 1_000_000})
	if err != nil {
		t.Fatal(err)
	}

	// Canonical-for-now branch A: one block carrying a transaction.
	tx := f.signedTransfer(t, f.alice, f.bob.Address(), 100, 5)
	blockA, _, err := c.BuildBlock(f.miner, []*types.Transaction{tx}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddBlock(blockA); err != nil {
		t.Fatal(err)
	}
	if c.GetReceipt(tx.Hash()) == nil {
		t.Fatal("receipt missing while branch A is canonical")
	}
	// Built now (while A's state is live), added after A is pruned.
	otherMinerLate := types.BytesToAddress([]byte{0x77})
	late := buildOn(t, c, blockA, otherMinerLate, nil, 9000)

	// Competing branch B out-mines it from genesis and keeps growing.
	otherMiner := types.BytesToAddress([]byte{0x99})
	parent := c.Genesis()
	for i := 0; i < 8; i++ {
		b := buildOn(t, c, parent, otherMiner, nil, uint64(2000+i*100))
		if err := c.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		parent = b
	}
	if c.Head().Hash() != parent.Hash() {
		t.Fatal("branch B should be canonical")
	}

	// Branch A's block is now 7 below the head with depth 3: pruned.
	if c.GetBlock(blockA.Hash()) != nil {
		t.Fatal("losing fork block survived past finality depth")
	}
	if c.StateAt(blockA.Hash()) != nil {
		t.Fatal("losing fork state survived past finality depth")
	}
	if c.GetReceipt(tx.Hash()) != nil {
		t.Fatal("pruned fork still answers receipts")
	}
	// A block attaching below the horizon is rejected (its parent is gone).
	if err := c.AddBlock(late); err == nil {
		t.Fatal("block on pruned parent accepted")
	}
	// Canonical data is untouched.
	if got := len(c.CanonicalBlocks()); got != 9 {
		t.Fatalf("canonical length %d", got)
	}
	if c.HeadBalance(otherMiner) != 8*c.Config().BlockReward {
		t.Fatal("canonical balances disturbed by pruning")
	}
}

// TestBoundedResidentStates: with bounded history the number of resident
// full states stays at hot window + checkpoints + genesis, regardless of
// chain length, and evicted states remain reachable through replay.
func TestBoundedResidentStates(t *testing.T) {
	f := newDurableFixture()
	cfg := testConfig(1)
	cfg.StateHistory = 3
	cfg.CheckpointInterval = 5
	cfg.Store = store.NewMem()
	c, err := NewWithContracts(cfg, f.alloc, f.code)
	if err != nil {
		t.Fatal(err)
	}
	var mined []*types.Block
	for i := 0; i < 40; i++ {
		mined = append(mined, f.mine(t, c, i%3))
	}
	head := c.Height()
	// Genesis + checkpoints at multiples of 5 up to the cold boundary + the
	// hot window (head-2..head). Allow the boundary block itself as slack.
	maxResident := 1 + int((head)/cfg.CheckpointInterval) + cfg.StateHistory + 1
	if got := c.ResidentStates(); got > maxResident {
		t.Fatalf("%d resident states, want <= %d", got, maxResident)
	}
	// Deep queries still answer, verified against the header roots.
	for _, b := range []*types.Block{mined[0], mined[7], mined[20]} {
		st := c.StateAt(b.Hash())
		if st == nil {
			t.Fatalf("StateAt(%d) nil after eviction", b.Number())
		}
		if st.Root() != b.Header.StateRoot {
			t.Fatalf("StateAt(%d) root mismatch", b.Number())
		}
	}
	// Replay does not re-grow residency.
	if got := c.ResidentStates(); got > maxResident {
		t.Fatalf("%d resident states after queries, want <= %d", got, maxResident)
	}
}

// TestCheckpointStickyError: a checkpoint persistence failure does not fail
// block acceptance but surfaces on Flush.
func TestCheckpointStickyError(t *testing.T) {
	f := newDurableFixture()
	fs := &failingStore{Store: store.NewMem()}
	cfg := testConfig(1)
	cfg.StateHistory = 2
	cfg.CheckpointInterval = 2
	cfg.Store = fs
	c, err := NewWithContracts(cfg, f.alloc, f.code)
	if err != nil {
		t.Fatal(err)
	}
	fs.failPuts = true
	for i := 0; i < 10; i++ {
		f.mine(t, c, 0) // must keep succeeding
	}
	if err := c.Flush(); err == nil {
		t.Fatal("sticky checkpoint error not surfaced by Flush")
	}
}

// failingStore wraps a Store and fails Put on demand.
type failingStore struct {
	store.Store
	failPuts bool
}

func (f *failingStore) Put(key string, value []byte) error {
	if f.failPuts {
		return fmt.Errorf("injected put failure for %q", key)
	}
	return f.Store.Put(key, value)
}

// TestRecoveryRebuildsAcrossForks reopens a store whose log contains fork
// blocks and checks fork choice converges to the same head it had live.
func TestRecoveryRebuildsAcrossForks(t *testing.T) {
	dir := t.TempDir()
	f := newDurableFixture()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// No pruning so the log's fork blocks are still linkable on reopen
	// before the final sweep.
	cfg := testConfig(1)
	cfg.StateHistory = 2
	cfg.CheckpointInterval = 3
	cfg.Store = s
	c, err := NewWithContracts(cfg, f.alloc, f.code)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	blocks := []*types.Block{c.Genesis()}
	for step := 0; step < 15; step++ {
		if rng.Intn(10) < 7 || len(blocks) < 3 {
			blocks = append(blocks, f.mine(t, c, rng.Intn(2)))
		} else {
			parent := blocks[len(blocks)-1-rng.Intn(3)]
			b := buildOn(t, c, parent, types.BytesToAddress([]byte{byte(0x40 + step)}), nil, f.lastTime+uint64(step))
			if err := c.AddBlock(b); err != nil {
				t.Fatal(err)
			}
			blocks = append(blocks, b)
		}
	}
	wantHead := c.Head().Hash()
	wantRoot := c.HeadState().Root()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Store = s2
	c2, err := NewWithContracts(cfg2, f.alloc, f.code)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Head().Hash(); got != wantHead {
		t.Fatalf("recovered head %s, want %s", got, wantHead)
	}
	if got := c2.HeadState().Root(); got != wantRoot {
		t.Fatalf("recovered root %s, want %s", got, wantRoot)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkReopenReplay measures crash-recovery cost: reopening a FileStore
// holding a 64-block chain (no final snapshot, so the head state is rebuilt
// by replay from the last checkpoint).
func BenchmarkReopenReplay(b *testing.B) {
	dir := b.TempDir()
	f := newDurableFixture()
	s, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	cfg := durableConfig(1, s)
	cfg.CheckpointInterval = 16
	c, err := NewWithContracts(cfg, f.alloc, f.code)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		f.mine(b, c, i%4)
	}
	// Flush but do not Close: the benchmark measures the crash path, where
	// no head snapshot exists and replay runs from the newest checkpoint.
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		si, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		ci, err := NewWithContracts(durableConfig(1, si), f.alloc, f.code)
		if err != nil {
			b.Fatal(err)
		}
		if ci.Height() != 64 {
			b.Fatalf("recovered height %d", ci.Height())
		}
		if err := si.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCheckpointAttachSkipsStale: a checkpoint persisted for a branch that
// later lost fork choice must be ignored on recovery (root mismatch), with
// replay covering the gap.
func TestCheckpointAttachSkipsStale(t *testing.T) {
	f := newDurableFixture()
	s := store.NewMem()
	cfg := testConfig(1)
	cfg.StateHistory = 2
	cfg.CheckpointInterval = 2
	cfg.Store = s
	c, err := NewWithContracts(cfg, f.alloc, f.code)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		f.mine(t, c, 1)
	}
	// Poison a checkpoint with a state that decodes but has the wrong root.
	if err := s.Put(checkpointKey(4), state.New().Encode()); err != nil {
		t.Fatal(err)
	}
	wantHead := c.Head().Hash()

	// Recover into a fresh chain over the same MemStore.
	cfg2 := cfg
	c2, err := NewWithContracts(cfg2, f.alloc, f.code)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Head().Hash() != wantHead {
		t.Fatal("recovery head mismatch with stale checkpoint present")
	}
	// Height 4's state must come from replay, not the poisoned snapshot.
	h4, ok := c2.CanonicalHashAt(4)
	if !ok {
		t.Fatal("no canonical block at 4")
	}
	st := c2.StateAt(h4)
	if st == nil {
		t.Fatal("StateAt(4) nil")
	}
	if st.Root() != c2.GetBlock(h4).Header.StateRoot {
		t.Fatal("stale checkpoint leaked into StateAt")
	}
}
