package chain

import (
	"errors"
	"math"
	"testing"
)

// TestAddTDChecked: total difficulty accumulation rejects uint64
// wraparound instead of silently producing a tiny TD that corrupts fork
// choice, and keeps the exact-fit boundary inclusive.
func TestAddTDChecked(t *testing.T) {
	if td, err := addTD(10, 32); err != nil || td != 42 {
		t.Fatalf("addTD(10,32) = %d, %v", td, err)
	}
	if td, err := addTD(math.MaxUint64-1, 1); err != nil || td != math.MaxUint64 {
		t.Fatalf("exact fit rejected: %d, %v", td, err)
	}
	if _, err := addTD(math.MaxUint64, 1); !errors.Is(err, ErrTDOverflow) {
		t.Fatalf("want ErrTDOverflow, got %v", err)
	}
	if _, err := addTD(1, math.MaxUint64); !errors.Is(err, ErrTDOverflow) {
		t.Fatalf("want ErrTDOverflow, got %v", err)
	}
}
