package chain

import (
	"errors"
	"fmt"
	"testing"

	"contractshard/internal/contract"
	"contractshard/internal/crypto"
	"contractshard/internal/mempool"
	"contractshard/internal/types"
)

// testConfig keeps PoW trivial so tests are fast.
func testConfig(shard types.ShardID) Config {
	cfg := DefaultConfig(shard)
	cfg.Difficulty = 16
	return cfg
}

type fixture struct {
	chain  *Chain
	alice  *crypto.Keypair
	bob    *crypto.Keypair
	miner  types.Address
	nonces map[types.Address]uint64
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	alice := crypto.KeypairFromSeed("alice")
	bob := crypto.KeypairFromSeed("bob")
	c, err := New(testConfig(1), map[types.Address]uint64{
		alice.Address(): 1_000_000,
		bob.Address():   1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		chain:  c,
		alice:  alice,
		bob:    bob,
		miner:  types.BytesToAddress([]byte{0xA1}),
		nonces: make(map[types.Address]uint64),
	}
}

func (f *fixture) signedTransfer(t *testing.T, from *crypto.Keypair, to types.Address, value, fee uint64) *types.Transaction {
	t.Helper()
	tx := &types.Transaction{
		Nonce: f.nonces[from.Address()],
		From:  from.Address(),
		To:    to,
		Value: value,
		Fee:   fee,
	}
	if err := crypto.SignTx(tx, from); err != nil {
		t.Fatal(err)
	}
	f.nonces[from.Address()]++
	return tx
}

func TestGenesis(t *testing.T) {
	f := newFixture(t)
	g := f.chain.Genesis()
	if g.Number() != 0 {
		t.Fatal("genesis number")
	}
	if f.chain.Head().Hash() != g.Hash() {
		t.Fatal("head should be genesis")
	}
	st := f.chain.HeadState()
	if st.GetBalance(f.alice.Address()) != 1_000_000 {
		t.Fatal("genesis alloc missing")
	}
}

func TestBuildAndAddBlock(t *testing.T) {
	f := newFixture(t)
	tx := f.signedTransfer(t, f.alice, f.bob.Address(), 100, 5)
	block, receipts, err := f.chain.BuildBlock(f.miner, []*types.Transaction{tx}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Txs) != 1 || len(receipts) != 1 {
		t.Fatalf("block txs %d receipts %d", len(block.Txs), len(receipts))
	}
	if receipts[0].Status != types.ReceiptSuccess {
		t.Fatalf("receipt: %+v", receipts[0])
	}
	if err := f.chain.AddBlock(block); err != nil {
		t.Fatal(err)
	}
	if f.chain.Height() != 1 {
		t.Fatal("height should be 1")
	}
	st := f.chain.HeadState()
	if st.GetBalance(f.bob.Address()) != 1_000_100 {
		t.Fatalf("bob balance %d", st.GetBalance(f.bob.Address()))
	}
	if st.GetBalance(f.alice.Address()) != 1_000_000-105 {
		t.Fatalf("alice balance %d", st.GetBalance(f.alice.Address()))
	}
	wantMiner := f.chain.Config().BlockReward + 5
	if st.GetBalance(f.miner) != wantMiner {
		t.Fatalf("miner balance %d want %d", st.GetBalance(f.miner), wantMiner)
	}
}

func TestEmptyBlockEarnsReward(t *testing.T) {
	f := newFixture(t)
	block, _, err := f.chain.BuildBlock(f.miner, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !block.IsEmpty() {
		t.Fatal("block should be empty")
	}
	if err := f.chain.AddBlock(block); err != nil {
		t.Fatal(err)
	}
	if got := f.chain.HeadState().GetBalance(f.miner); got != f.chain.Config().BlockReward {
		t.Fatalf("empty block reward: %d", got)
	}
	if f.chain.EmptyBlockCount() != 1 {
		t.Fatal("empty block not counted")
	}
}

func TestAddBlockRejections(t *testing.T) {
	f := newFixture(t)
	tx := f.signedTransfer(t, f.alice, f.bob.Address(), 1, 1)
	good, _, err := f.chain.BuildBlock(f.miner, []*types.Transaction{tx}, 1000)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong shard.
	wrong := good.Header.Clone()
	wrong.ShardID = 9
	if err := f.chain.AddBlock(&types.Block{Header: wrong, Txs: good.Txs}); !errors.Is(err, ErrWrongShard) {
		t.Fatalf("wrong shard: %v", err)
	}
	// Unknown parent.
	orphan := good.Header.Clone()
	orphan.ParentHash = types.BytesToHash([]byte{0xAB})
	if err := f.chain.AddBlock(&types.Block{Header: orphan, Txs: good.Txs}); !errors.Is(err, ErrUnknownParent) {
		t.Fatalf("orphan: %v", err)
	}
	// Bad state root.
	badRoot := good.Header.Clone()
	badRoot.StateRoot = types.BytesToHash([]byte{0xCD})
	if err := f.chain.AddBlock(&types.Block{Header: badRoot, Txs: good.Txs}); !errors.Is(err, ErrBadSeal) && !errors.Is(err, ErrBadStateRoot) {
		// Changing the root invalidates the seal too; either rejection is correct.
		t.Fatalf("bad root: %v", err)
	}
	// Bad gas used declaration.
	badGas := good.Header.Clone()
	badGas.GasUsed += 7
	if err := f.chain.AddBlock(&types.Block{Header: badGas, Txs: good.Txs}); err == nil {
		t.Fatal("bad gas accepted")
	}

	// The untampered block is accepted, exactly once.
	if err := f.chain.AddBlock(good); err != nil {
		t.Fatal(err)
	}
	if err := f.chain.AddBlock(good); !errors.Is(err, ErrKnownBlock) {
		t.Fatalf("duplicate: %v", err)
	}
}

func TestInvalidTxRejectsBlock(t *testing.T) {
	f := newFixture(t)
	tx := f.signedTransfer(t, f.alice, f.bob.Address(), 1, 1)
	tx.Nonce = 99 // stale/future nonce
	// Re-sign with the bad nonce so only the nonce check can fail.
	tx.Sig, tx.PubKey = nil, nil
	if err := crypto.SignTx(tx, f.alice); err != nil {
		t.Fatal(err)
	}
	block, _, err := f.chain.BuildBlock(f.miner, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-craft a block that includes the invalid tx with plausible header
	// values; AddBlock must reject it during re-execution.
	forged := types.NewBlock(&types.Header{
		ParentHash: block.Header.ParentHash,
		Number:     block.Header.Number,
		Time:       block.Header.Time,
		Difficulty: block.Header.Difficulty,
		Coinbase:   f.miner,
		StateRoot:  block.Header.StateRoot,
		ShardID:    block.Header.ShardID,
		GasLimit:   block.Header.GasLimit,
	}, []*types.Transaction{tx})
	// Seal it so we get past PoW.
	if err := sealForTest(forged); err != nil {
		t.Fatal(err)
	}
	if err := f.chain.AddBlock(forged); !errors.Is(err, ErrInvalidTx) {
		t.Fatalf("invalid tx: %v", err)
	}
}

func sealForTest(b *types.Block) error {
	return sealHeader(b.Header)
}

func TestBuildBlockSkipsInvalid(t *testing.T) {
	f := newFixture(t)
	good := f.signedTransfer(t, f.alice, f.bob.Address(), 1, 1)
	unsigned := &types.Transaction{Nonce: 0, From: f.bob.Address(), To: f.alice.Address(), Value: 1}
	block, receipts, err := f.chain.BuildBlock(f.miner, []*types.Transaction{unsigned, good}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Txs) != 1 || block.Txs[0].Hash() != good.Hash() {
		t.Fatal("invalid tx not skipped")
	}
	if receipts[0].Status != types.ReceiptSuccess {
		t.Fatal("surviving receipt should be success")
	}
	if err := f.chain.AddBlock(block); err != nil {
		t.Fatal(err)
	}
}

func TestMaxBlockTxs(t *testing.T) {
	f := newFixture(t)
	var txs []*types.Transaction
	for i := 0; i < 15; i++ {
		txs = append(txs, f.signedTransfer(t, f.alice, f.bob.Address(), 1, 1))
	}
	block, _, err := f.chain.BuildBlock(f.miner, txs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Txs) != f.chain.Config().MaxBlockTxs {
		t.Fatalf("block holds %d txs, want %d", len(block.Txs), f.chain.Config().MaxBlockTxs)
	}
	if err := f.chain.AddBlock(block); err != nil {
		t.Fatal(err)
	}
}

func TestContractCallOnChain(t *testing.T) {
	f := newFixture(t)
	dest := types.BytesToAddress([]byte{0xDE})
	contractAddr := types.BytesToAddress([]byte{0xC0})

	// Install the paper's unconditional transfer contract in genesis state.
	chainWithCode, err := NewWithContracts(testConfig(1),
		map[types.Address]uint64{f.alice.Address(): 1_000_000},
		map[types.Address][]byte{contractAddr: contract.UnconditionalTransfer(dest)})
	if err != nil {
		t.Fatal(err)
	}

	tx := &types.Transaction{
		Nonce: 0,
		From:  f.alice.Address(),
		To:    contractAddr,
		Value: 500,
		Fee:   10,
		Data:  []byte{1}, // mark as contract call
	}
	if err := crypto.SignTx(tx, f.alice); err != nil {
		t.Fatal(err)
	}
	block, receipts, err := chainWithCode.BuildBlock(f.miner, []*types.Transaction{tx}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := chainWithCode.AddBlock(block); err != nil {
		t.Fatal(err)
	}
	if receipts[0].Status != types.ReceiptSuccess || !receipts[0].ContractOK {
		t.Fatalf("receipt: %+v", receipts[0])
	}
	st := chainWithCode.HeadState()
	if st.GetBalance(dest) != 500 {
		t.Fatalf("contract did not forward value: dest=%d", st.GetBalance(dest))
	}
	if st.GetBalance(contractAddr) != 0 {
		t.Fatalf("contract retained escrow: %d", st.GetBalance(contractAddr))
	}
}

func TestContractRevertKeepsFee(t *testing.T) {
	f := newFixture(t)
	dest := types.BytesToAddress([]byte{0xDE})
	contractAddr := types.BytesToAddress([]byte{0xC0})
	// Conditional transfer with threshold 0: condition (balance < 0) never
	// holds, so the call always reverts.
	c, err := NewWithContracts(testConfig(1),
		map[types.Address]uint64{f.alice.Address(): 1_000_000},
		map[types.Address][]byte{contractAddr: contract.ConditionalTransfer(dest, 0)})
	if err != nil {
		t.Fatal(err)
	}
	tx := &types.Transaction{
		Nonce: 0, From: f.alice.Address(), To: contractAddr,
		Value: 500, Fee: 10, Data: []byte{1},
	}
	if err := crypto.SignTx(tx, f.alice); err != nil {
		t.Fatal(err)
	}
	block, receipts, err := c.BuildBlock(f.miner, []*types.Transaction{tx}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddBlock(block); err != nil {
		t.Fatal(err)
	}
	if receipts[0].Status != types.ReceiptReverted {
		t.Fatalf("receipt: %+v", receipts[0])
	}
	st := c.HeadState()
	// Escrowed value returned; fee paid; nonce advanced.
	if st.GetBalance(f.alice.Address()) != 1_000_000-10 {
		t.Fatalf("alice balance %d", st.GetBalance(f.alice.Address()))
	}
	if st.GetBalance(dest) != 0 || st.GetBalance(contractAddr) != 0 {
		t.Fatal("reverted call moved value")
	}
	if st.GetNonce(f.alice.Address()) != 1 {
		t.Fatal("revert must still consume the nonce")
	}
}

func TestForkChoiceHeaviestWins(t *testing.T) {
	f := newFixture(t)
	tx := f.signedTransfer(t, f.alice, f.bob.Address(), 1, 1)

	// Branch A: one block at height 1.
	blockA, _, err := f.chain.BuildBlock(f.miner, []*types.Transaction{tx}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.chain.AddBlock(blockA); err != nil {
		t.Fatal(err)
	}
	headAfterA := f.chain.Head().Hash()

	// Branch B: a competing empty block also at height 1 (same parent).
	otherMiner := types.BytesToAddress([]byte{0x99})
	blockB := buildOn(t, f.chain, f.chain.Genesis(), otherMiner, nil, 2000)
	if err := f.chain.AddBlock(blockB); err != nil {
		t.Fatal(err)
	}
	// Same total difficulty: head stays or switches deterministically by hash.
	want := headAfterA
	if blockB.Hash().Compare(headAfterA) < 0 {
		want = blockB.Hash()
	}
	if f.chain.Head().Hash() != want {
		t.Fatal("tie break not deterministic by hash")
	}

	// Extend branch B: it becomes strictly heavier and must win.
	blockB2 := buildOn(t, f.chain, blockB, otherMiner, nil, 3000)
	if err := f.chain.AddBlock(blockB2); err != nil {
		t.Fatal(err)
	}
	if f.chain.Head().Hash() != blockB2.Hash() {
		t.Fatal("heavier branch did not win")
	}
	if f.chain.Height() != 2 {
		t.Fatal("height after reorg")
	}
	// The canonical chain must now be genesis -> B -> B2.
	canon := f.chain.CanonicalBlocks()
	if len(canon) != 3 || canon[1].Hash() != blockB.Hash() {
		t.Fatal("canonical chain wrong after reorg")
	}
}

// buildOn assembles a sealed block on an arbitrary parent (not just head).
func buildOn(t *testing.T, c *Chain, parent *types.Block, coinbase types.Address, txs []*types.Transaction, timeMillis uint64) *types.Block {
	t.Helper()
	st := c.StateAt(parent.Hash())
	if st == nil {
		t.Fatal("parent state missing")
	}
	if err := st.AddBalance(coinbase, c.Config().BlockReward); err != nil {
		t.Fatal(err)
	}
	header := &types.Header{
		ParentHash: parent.Hash(),
		Number:     parent.Number() + 1,
		Time:       timeMillis,
		Difficulty: c.Config().Difficulty,
		Coinbase:   coinbase,
		StateRoot:  st.Root(),
		ShardID:    c.Config().ShardID,
		GasLimit:   c.Config().GasLimit,
	}
	b := types.NewBlock(header, txs)
	if err := sealHeader(header); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMineNextWithPool(t *testing.T) {
	f := newFixture(t)
	pool := mempool.New(0)
	for i := 0; i < 12; i++ {
		if err := pool.Add(f.signedTransfer(t, f.alice, f.bob.Address(), 1, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Nonce ordering vs fee ordering: highest-fee txs have the highest
	// nonces, which are not yet valid, so the miner should confirm what it
	// can; with all from one sender, only the lowest-nonce tx (fee 0) is
	// valid in the first block.
	block, err := f.chain.MineNext(f.miner, pool, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Txs) == 0 {
		t.Fatal("expected at least one confirmable tx")
	}
	if pool.Contains(block.Txs[0].Hash()) {
		t.Fatal("confirmed tx still in pool")
	}
}

func TestConfirmedTxCount(t *testing.T) {
	f := newFixture(t)
	tx := f.signedTransfer(t, f.alice, f.bob.Address(), 1, 1)
	block, _, err := f.chain.BuildBlock(f.miner, []*types.Transaction{tx}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.chain.AddBlock(block); err != nil {
		t.Fatal(err)
	}
	if f.chain.ConfirmedTxCount() != 1 {
		t.Fatal("confirmed count")
	}
}

func TestStateAtIsolation(t *testing.T) {
	f := newFixture(t)
	st := f.chain.HeadState()
	if err := st.AddBalance(f.alice.Address(), 1); err != nil {
		t.Fatal(err)
	}
	if f.chain.HeadState().GetBalance(f.alice.Address()) != 1_000_000 {
		t.Fatal("external mutation leaked into chain state")
	}
	if f.chain.StateAt(types.BytesToHash([]byte{9})) != nil {
		t.Fatal("unknown block should give nil state")
	}
}

func ExampleChain_BuildBlock() {
	alice := crypto.KeypairFromSeed("alice")
	bob := crypto.KeypairFromSeed("bob")
	c, _ := New(testConfig(1), map[types.Address]uint64{alice.Address(): 1000})
	tx := &types.Transaction{From: alice.Address(), To: bob.Address(), Value: 10, Fee: 1}
	_ = crypto.SignTx(tx, alice)
	block, _, _ := c.BuildBlock(types.Address{}, []*types.Transaction{tx}, 0)
	_ = c.AddBlock(block)
	fmt.Println(c.Height(), c.HeadState().GetBalance(bob.Address()))
	// Output: 1 10
}

func TestRetargetModeDifficultyTracksInterval(t *testing.T) {
	alice := crypto.KeypairFromSeed("alice")
	cfg := testConfig(1)
	cfg.TargetInterval = 10 // seconds
	cfg.Difficulty = 1 << 12
	c, err := New(cfg, map[types.Address]uint64{alice.Address(): 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	miner := types.BytesToAddress([]byte{0xA1})

	// Mine blocks 2 seconds apart: faster than target, difficulty must rise.
	last := c.Genesis().Header.Difficulty
	tms := uint64(0)
	for i := 0; i < 5; i++ {
		tms += 2000
		block, _, err := c.BuildBlock(miner, nil, tms)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddBlock(block); err != nil {
			t.Fatal(err)
		}
		if block.Header.Difficulty < last {
			t.Fatalf("fast blocks lowered difficulty: %d -> %d", last, block.Header.Difficulty)
		}
		last = block.Header.Difficulty
	}
	if last <= cfg.Difficulty {
		t.Fatalf("difficulty did not rise: %d", last)
	}

	// Now mine far apart: slower than target, difficulty must fall.
	for i := 0; i < 5; i++ {
		tms += 60_000
		block, _, err := c.BuildBlock(miner, nil, tms)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddBlock(block); err != nil {
			t.Fatal(err)
		}
		if block.Header.Difficulty > last {
			t.Fatalf("slow blocks raised difficulty: %d -> %d", last, block.Header.Difficulty)
		}
		last = block.Header.Difficulty
	}
}

func TestRetargetModeRejectsWrongDifficulty(t *testing.T) {
	alice := crypto.KeypairFromSeed("alice")
	cfg := testConfig(1)
	cfg.TargetInterval = 10
	cfg.Difficulty = 1 << 12
	c, err := New(cfg, map[types.Address]uint64{alice.Address(): 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	block, _, err := c.BuildBlock(types.BytesToAddress([]byte{0xA1}), nil, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Declare a lazy difficulty (keeping genesis value) — must be rejected.
	forged := block.Header.Clone()
	forged.Difficulty = cfg.Difficulty / 2
	if err := sealHeader(forged); err != nil {
		t.Fatal(err)
	}
	err = c.AddBlock(&types.Block{Header: forged, Txs: nil})
	if !errors.Is(err, ErrBadDifficulty) {
		t.Fatalf("wrong difficulty: %v", err)
	}
}

func TestNonMonotonicTimeRejected(t *testing.T) {
	f := newFixture(t)
	b1, _, err := f.chain.BuildBlock(f.miner, nil, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.chain.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	// Hand-craft a child with time before its parent.
	st := f.chain.StateAt(b1.Hash())
	if err := st.AddBalance(f.miner, f.chain.Config().BlockReward); err != nil {
		t.Fatal(err)
	}
	h := &types.Header{
		ParentHash: b1.Hash(),
		Number:     2,
		Time:       1000, // before parent's 5000
		Difficulty: f.chain.Config().Difficulty,
		Coinbase:   f.miner,
		StateRoot:  st.Root(),
		ShardID:    1,
		GasLimit:   f.chain.Config().GasLimit,
	}
	b2 := types.NewBlock(h, nil)
	if err := sealHeader(h); err != nil {
		t.Fatal(err)
	}
	if err := f.chain.AddBlock(b2); !errors.Is(err, ErrNonMonotonicTime) {
		t.Fatalf("time regression: %v", err)
	}
}

func TestHeadSnapshotConsistentUnderConcurrentAddBlock(t *testing.T) {
	// Readers snapshotting head+state while a writer extends the chain must
	// always see a block/state pair that belong together: the state root of
	// the copied state equals the header's declared root.
	f := newFixture(t)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 8; i++ {
			block, _, err := f.chain.BuildBlock(f.miner, nil, uint64(1000*(i+1)))
			if err != nil {
				done <- err
				return
			}
			if err := f.chain.AddBlock(block); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 200; i++ {
		block, st := f.chain.HeadSnapshot()
		if got := st.Root(); got != block.Header.StateRoot {
			t.Fatalf("torn snapshot: state root %s vs header %s at height %d",
				got, block.Header.StateRoot, block.Number())
		}
		if st := f.chain.HeadState(); st == nil {
			t.Fatal("HeadState returned nil")
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestMineNextBoundedSelectionFallback: MineNext now feeds BuildBlock a
// bounded top-of-pool prefix. When that whole prefix is inapplicable — here,
// high-fee transactions with far-future nonces outranking every currently
// valid one — the miner must fall back to the full pool and still fill the
// block exactly as the unbounded selection did.
func TestMineNextBoundedSelectionFallback(t *testing.T) {
	f := newFixture(t)
	pool := mempool.New(0)
	budget := 4 * f.chain.Config().MaxBlockTxs
	// budget high-fee txs with unreachable nonces occupy the entire prefix.
	for i := 0; i < budget; i++ {
		tx := &types.Transaction{
			Nonce: uint64(1000 + i),
			From:  f.alice.Address(),
			To:    f.bob.Address(),
			Value: 1,
			Fee:   1 << 30,
		}
		if err := crypto.SignTx(tx, f.alice); err != nil {
			t.Fatal(err)
		}
		if err := pool.Add(tx); err != nil {
			t.Fatal(err)
		}
	}
	// One applicable low-fee transfer ranked below all of them.
	valid := f.signedTransfer(t, f.bob, f.alice.Address(), 1, 1)
	if err := pool.Add(valid); err != nil {
		t.Fatal(err)
	}
	block, err := f.chain.MineNext(f.miner, pool, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Txs) != 1 || block.Txs[0].Hash() != valid.Hash() {
		t.Fatalf("bounded selection missed the applicable tx: block has %d txs", len(block.Txs))
	}
	if pool.Contains(valid.Hash()) {
		t.Fatal("confirmed tx still pooled")
	}
}
