package chain

// Benchmarks for the staged AddBlock pipeline and the maintained indexes.
//
// The AddBlockSerial/AddBlockParallel pair is the acceptance check for the
// staged validation pipeline: the same pre-sealed blocks on distinct parents
// are inserted one-by-one versus from concurrent goroutines. Because body
// re-execution runs outside the chain lock, the parallel wall-clock per
// batch should land well under the serial sum on a multi-core machine.
//
// The query benchmarks pin the indexed read paths (FindTx, GetReceipt,
// counters, locator, range serving) at two chain heights; the maintained
// indexes make them O(1)/O(log n), so ns/op should barely move with height.

import (
	"fmt"
	"sync"
	"testing"

	"contractshard/internal/contract"
	"contractshard/internal/crypto"
	"contractshard/internal/types"
)

// benchSetup builds a chain whose spine holds depth tx-carrying blocks, plus
// one pre-sealed side block (full body, MaxBlockTxs transfers) on each of
// the depth distinct parents. Everything is sealed once up front so timed
// regions measure validation, never mining.
func benchSetup(b *testing.B, depth int) (cfg Config, alloc map[types.Address]uint64, spine, side []*types.Block) {
	b.Helper()
	alice := crypto.KeypairFromSeed("bench-alice")
	bob := crypto.KeypairFromSeed("bench-bob")
	cfg = testConfig(1)
	alloc = map[types.Address]uint64{
		alice.Address(): 1 << 40,
		bob.Address():   1 << 40,
	}
	c, err := New(cfg, alloc)
	if err != nil {
		b.Fatal(err)
	}
	parents := []*types.Block{c.Genesis()}
	nonce := uint64(0)
	for i := 0; i < depth; i++ {
		tx := signedBenchTransfer(b, alice, nonce)
		nonce++
		blk, _, err := c.BuildBlock(types.BytesToAddress([]byte{0xA1}), []*types.Transaction{tx}, uint64(i+1)*1000)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.AddBlock(blk); err != nil {
			b.Fatal(err)
		}
		spine = append(spine, blk)
		parents = append(parents, blk)
	}
	// One full side block per distinct parent; bob is untouched on the
	// spine, so its nonces start at zero on every branch.
	for i := 0; i < depth; i++ {
		txs := make([]*types.Transaction, cfg.MaxBlockTxs)
		for j := range txs {
			txs[j] = signedBenchTransfer(b, bob, uint64(j))
		}
		side = append(side, execBlockOn(b, c, parents[i], types.BytesToAddress([]byte{0xB0, byte(i)}),
			txs, parents[i].Header.Time+500))
	}
	return cfg, alloc, spine, side
}

func signedBenchTransfer(b *testing.B, from *crypto.Keypair, nonce uint64) *types.Transaction {
	b.Helper()
	tx := &types.Transaction{
		Nonce: nonce,
		From:  from.Address(),
		To:    types.BytesToAddress([]byte{0xDD}),
		Value: 1,
		Fee:   1,
	}
	if err := crypto.SignTx(tx, from); err != nil {
		b.Fatal(err)
	}
	return tx
}

// replayChain rebuilds a fresh chain holding the spine, giving each
// iteration a clean insertion target for the side blocks.
func replayChain(b *testing.B, cfg Config, alloc map[types.Address]uint64, spine []*types.Block) *Chain {
	b.Helper()
	c, err := New(cfg, alloc)
	if err != nil {
		b.Fatal(err)
	}
	for _, blk := range spine {
		if err := c.AddBlock(blk); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

func benchAddBlocks(b *testing.B, concurrent bool) {
	const depth = 8
	cfg, alloc, spine, side := benchSetup(b, depth)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := replayChain(b, cfg, alloc, spine)
		b.StartTimer()
		if concurrent {
			var wg sync.WaitGroup
			for _, blk := range side {
				wg.Add(1)
				go func(blk *types.Block) {
					defer wg.Done()
					if err := c.AddBlock(blk); err != nil {
						b.Error(err)
					}
				}(blk)
			}
			wg.Wait()
		} else {
			for _, blk := range side {
				if err := c.AddBlock(blk); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkAddBlockSerial inserts 8 pre-sealed full blocks one at a time —
// the baseline for the pipeline's overlap claim.
func BenchmarkAddBlockSerial(b *testing.B) { benchAddBlocks(b, false) }

// BenchmarkAddBlockParallel inserts the same 8 blocks from 8 goroutines.
// Validation is CPU-bound (signature verification dominates), so with
// re-execution outside the chain lock this beats the serial baseline on
// any machine with ≥2 cores; on a single core the two converge, which is
// itself evidence the pipeline adds no contention overhead.
func BenchmarkAddBlockParallel(b *testing.B) { benchAddBlocks(b, true) }

// BenchmarkAddBlockUnderReaders measures block insertion while four readers
// hammer the indexed query surface — the regression guard for holding the
// chain lock across re-execution.
func BenchmarkAddBlockUnderReaders(b *testing.B) {
	const depth = 8
	cfg, alloc, spine, side := benchSetup(b, depth)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	warm := replayChain(b, cfg, alloc, spine)
	current := &warm
	var mu sync.Mutex // readers follow the iteration's current chain
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				c := *current
				mu.Unlock()
				_ = c.ConfirmedTxCount()
				_ = c.EmptyBlockCount()
				_ = c.Locator()
				_ = c.BlocksByRange(0, 4)
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := replayChain(b, cfg, alloc, spine)
		mu.Lock()
		current = &c
		mu.Unlock()
		b.StartTimer()
		for _, blk := range side {
			if err := c.AddBlock(blk); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	close(stop)
	readers.Wait()
}

// benchQueryChain grows a canonical chain to the given height, two
// transfers per block, and returns it with the hash of a mid-chain tx.
func benchQueryChain(b *testing.B, height int) (*Chain, types.Hash) {
	b.Helper()
	alice := crypto.KeypairFromSeed("bench-alice")
	c, err := New(testConfig(1), map[types.Address]uint64{alice.Address(): 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	var probe types.Hash
	nonce := uint64(0)
	for i := 0; i < height; i++ {
		txs := []*types.Transaction{
			signedBenchTransfer(b, alice, nonce),
			signedBenchTransfer(b, alice, nonce+1),
		}
		nonce += 2
		blk, _, err := c.BuildBlock(types.BytesToAddress([]byte{0xA1}), txs, uint64(i+1)*1000)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.AddBlock(blk); err != nil {
			b.Fatal(err)
		}
		if i == height/2 {
			probe = txs[0].Hash()
		}
	}
	return c, probe
}

// BenchmarkIndexedQueries times every maintained-index read path at two
// chain heights. Near-flat ns/op across heights is the acceptance signal
// that no query path re-walks the canonical chain.
func BenchmarkIndexedQueries(b *testing.B) {
	for _, height := range []int{64, 512} {
		c, probe := benchQueryChain(b, height)
		locator := c.Locator()
		head := c.Height()
		b.Run(fmt.Sprintf("FindTx/height=%d", height), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := c.FindTx(probe); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("GetReceipt/height=%d", height), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if r := c.GetReceipt(probe); r == nil {
					b.Fatal("receipt missing")
				}
			}
		})
		b.Run(fmt.Sprintf("ConfirmedTxCount/height=%d", height), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if c.ConfirmedTxCount() == 0 {
					b.Fatal("no confirmed txs")
				}
			}
		})
		b.Run(fmt.Sprintf("EmptyBlockCount/height=%d", height), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = c.EmptyBlockCount()
			}
		})
		b.Run(fmt.Sprintf("Locator/height=%d", height), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if len(c.Locator()) == 0 {
					b.Fatal("empty locator")
				}
			}
		})
		b.Run(fmt.Sprintf("CommonAncestor/height=%d", height), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := c.CommonAncestor(locator); !ok {
					b.Fatal("no common ancestor with self")
				}
			}
		})
		b.Run(fmt.Sprintf("BlocksByRange/height=%d", height), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := c.BlocksByRange(head-3, 4); len(got) != 4 {
					b.Fatalf("range length %d", len(got))
				}
			}
		})
	}
}

// benchProcessChain builds a chain plus a block-sized batch of signed
// transactions for the execution-engine benchmarks. Conflict-free batches
// use distinct senders and recipients (fees commute through the coinbase
// delta, so nothing serializes); hotspot batches all call one counter
// contract, forcing the engine to fall back to ordered re-execution.
func benchProcessChain(b *testing.B, workers, nTx int, hotspot bool) (*Chain, []*types.Transaction, types.Address) {
	b.Helper()
	cfg := testConfig(1)
	cfg.ExecWorkers = workers
	cfg.MaxBlockTxs = nTx
	alloc := make(map[types.Address]uint64)
	signers := make([]*crypto.Keypair, nTx)
	for i := range signers {
		signers[i] = crypto.KeypairFromSeed(fmt.Sprintf("bench-proc-%d", i))
		alloc[signers[i].Address()] = 1 << 40
	}
	con := types.BytesToAddress([]byte{0xEE})
	c, err := NewWithContracts(cfg, alloc, map[types.Address][]byte{con: contract.CounterContract()})
	if err != nil {
		b.Fatal(err)
	}
	txs := make([]*types.Transaction, nTx)
	for i, from := range signers {
		to := types.BytesToAddress([]byte{0x40, byte(i)})
		if hotspot {
			to = con
		}
		txs[i] = &types.Transaction{From: from.Address(), To: to, Value: 1, Fee: 1}
		if err := crypto.SignTx(txs[i], from); err != nil {
			b.Fatal(err)
		}
	}
	return c, txs, types.BytesToAddress([]byte{0xA1})
}

func benchProcessBlock(b *testing.B, workers int, hotspot bool) {
	const nTx = 64
	c, txs, coinbase := benchProcessChain(b, workers, nTx, hotspot)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := c.HeadState()
		b.StartTimer()
		if _, _, err := c.process(st, txs, coinbase); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcessBlockSerial executes a 64-tx conflict-free block with the
// reference serial engine — the baseline for the parallel speedup curve.
func BenchmarkProcessBlockSerial(b *testing.B) { benchProcessBlock(b, 1, false) }

// BenchmarkProcessBlockParallel executes the same block with the optimistic
// parallel engine. Worker count is capped at GOMAXPROCS, so running with
// -cpu 1,2,4,8 produces the scaling curve; signature verification dominates
// per-tx cost and parallelizes perfectly on a conflict-free batch.
func BenchmarkProcessBlockParallel(b *testing.B) { benchProcessBlock(b, 64, false) }

// BenchmarkProcessBlockParallelHotspot sends every transaction to one
// counter contract — a worst case where all speculation is wasted and the
// engine re-executes everything in order. The interesting number is how
// close it stays to the serial baseline (the overhead of losing).
func BenchmarkProcessBlockParallelHotspot(b *testing.B) { benchProcessBlock(b, 64, true) }
