package chain

// Chain-level tests for the receipts method: end-to-end burn→receipt→mint
// between two shard chains, the adversarial-proof sweep (state-neutral
// rejection, mirroring apply_test.go's invalid-tx contract), and the
// replay-protection property — a receipt never mints twice, across blocks,
// reorgs and FileStore restarts.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"contractshard/internal/crypto"
	"contractshard/internal/pow"
	"contractshard/internal/store"
	"contractshard/internal/types"
	"contractshard/internal/xshard"
)

// xfix is a two-shard world: alice is funded on the source shard 1, and
// shard 2 is the destination whose header book tracks shard 1 headers.
type xfix struct {
	src, dst *Chain
	book     *xshard.HeaderBook
	alice    *crypto.Keypair
	bob      types.Address
	miner    types.Address
}

// newXFix builds the two chains. dstStore, when non-nil, persists the
// destination chain and its header book (restart tests reopen it).
func newXFix(t *testing.T, dstStore store.Store) *xfix {
	t.Helper()
	alice := crypto.KeypairFromSeed("xshard-alice")
	src, err := New(testConfig(1), map[types.Address]uint64{alice.Address(): 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	book := xshard.NewHeaderBook(1, nil)
	if dstStore != nil {
		if err := book.Attach(dstStore); err != nil {
			t.Fatal(err)
		}
	}
	dcfg := testConfig(2)
	dcfg.XShard = book
	dcfg.Store = dstStore
	dst, err := New(dcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &xfix{
		src: src, dst: dst, book: book,
		alice: alice,
		bob:   crypto.KeypairFromSeed("xshard-bob").Address(),
		miner: types.BytesToAddress([]byte{0xA1}),
	}
}

// burnAndProve signs a burn, mines it on the source shard, buries it under
// one more source block (the fixture book's finality depth), and returns the
// mint carrying the proof plus that descendant as finality evidence. The
// destination's book is deliberately NOT fed the header — mints must verify
// from their own carried evidence, never from gossip history.
func (f *xfix) burnAndProve(t *testing.T, nonce, value, fee uint64) *types.Transaction {
	t.Helper()
	burn := xshard.NewBurn(f.alice.Address(), f.bob, value, fee, nonce, 1, 2)
	if err := crypto.SignTx(burn, f.alice); err != nil {
		t.Fatal(err)
	}
	// A filler transfer rides along so the inclusion proof has a sibling
	// (single-leaf proofs have nothing to tamper with in the sweep).
	filler := signedTx(t, f.alice, nonce+1, f.alice.Address(), 0, 1)
	blk, _, err := f.src.BuildBlock(f.miner, []*types.Transaction{burn, filler}, f.src.Head().Header.Time+1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.src.AddBlock(blk); err != nil {
		t.Fatal(err)
	}
	if len(blk.Txs) != 2 {
		t.Fatalf("burn not mined: %d txs", len(blk.Txs))
	}
	// One empty block on top buries the burn to the book's finality depth.
	child, _, err := f.src.BuildBlock(f.miner, nil, f.src.Head().Header.Time+2000)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.src.AddBlock(child); err != nil {
		t.Fatal(err)
	}
	proof, header, err := f.src.ProveInclusion(burn.Hash())
	if err != nil {
		t.Fatal(err)
	}
	return xshard.NewMint(burn, proof, header, []*types.Header{child.Header})
}

// mineOnDst mines the given transactions into the destination chain and
// returns the block.
func (f *xfix) mineOnDst(t *testing.T, txs ...*types.Transaction) *types.Block {
	t.Helper()
	blk, _, err := f.dst.BuildBlock(f.miner, txs, f.dst.Head().Header.Time+1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.dst.AddBlock(blk); err != nil {
		t.Fatal(err)
	}
	return blk
}

// sealAdversarialBlock hand-builds a sealed, statelessly valid destination
// block containing txs — bypassing the producer's invalid-tx filtering — so
// AddBlock's re-execution is what must reject it.
func (f *xfix) sealAdversarialBlock(t *testing.T, txs []*types.Transaction) *types.Block {
	t.Helper()
	parent := f.dst.Head().Header
	h := &types.Header{
		ParentHash: parent.Hash(),
		Number:     parent.Number + 1,
		Time:       parent.Time + 1000,
		Difficulty: f.dst.cfg.Difficulty,
		Coinbase:   f.miner,
		ShardID:    2,
		GasLimit:   f.dst.cfg.GasLimit,
	}
	blk := types.NewBlock(h, txs)
	if err := pow.Seal(h, 1<<24); err != nil {
		t.Fatal(err)
	}
	return blk
}

// TestXShardTransferEndToEnd: the full burn→receipt→mint path between two
// chains, with value conservation on both sides and the consumed-set mark
// landing in destination state.
func TestXShardTransferEndToEnd(t *testing.T) {
	f := newXFix(t, nil)
	const value, fee = 40_000, 7

	mint := f.burnAndProve(t, 0, value, fee)

	// Source side: alice paid value+fee (plus the filler's fee of 1); the
	// value is destroyed — only the fees and block reward reappear in the
	// miner's account.
	if got := f.src.HeadBalance(f.alice.Address()); got != 1_000_000-value-fee-1 {
		t.Fatalf("alice after burn = %d", got)
	}
	// Two source blocks were mined: the burn's and the burial block.
	if got := f.src.HeadBalance(f.miner); got != 2*f.src.cfg.BlockReward+fee+1 {
		t.Fatalf("src miner after burn = %d", got)
	}
	if got := f.src.HeadNonce(f.alice.Address()); got != 2 {
		t.Fatalf("alice nonce after burn = %d", got)
	}

	// Destination side: the mint recreates the value for bob.
	blk := f.mineOnDst(t, mint)
	if len(blk.Txs) != 1 {
		t.Fatalf("mint not mined: %d txs", len(blk.Txs))
	}
	if got := f.dst.HeadBalance(f.bob); got != value {
		t.Fatalf("bob after mint = %d, want %d", got, value)
	}
	r := f.dst.GetReceipt(mint.Hash())
	if r == nil || r.Status != types.ReceiptSuccess {
		t.Fatalf("mint receipt = %+v", r)
	}
	if r.FeePaid != 0 {
		t.Fatalf("mint paid a fee: %d", r.FeePaid)
	}
	// The consumed set recorded the burn.
	burnHash := mint.Mint.Burn.Hash()
	if len(f.dst.HeadState().GetStorage(types.XShardConsumedAddress, burnHash[:])) == 0 {
		t.Fatal("consumed set missing the redeemed receipt")
	}
}

// TestMintAdversarialSweep: every forged variant is rejected with
// ReceiptInvalid and leaves the destination state bit-identical — the
// snapshot/revert parity contract from the invalid-tx sweep.
func TestMintAdversarialSweep(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(f *xfix, mint *types.Transaction) *types.Transaction
	}{
		{"tampered proof path", func(f *xfix, m *types.Transaction) *types.Transaction {
			m.Mint.Proof.Siblings[0][3] ^= 0xFF
			return m
		}},
		{"amount mismatch", func(f *xfix, m *types.Transaction) *types.Transaction {
			m.Value += 1
			return m
		}},
		{"redirected recipient", func(f *xfix, m *types.Transaction) *types.Transaction {
			m.To = types.BytesToAddress([]byte{0x99})
			return m
		}},
		{"wrong destination shard", func(f *xfix, m *types.Transaction) *types.Transaction {
			// A lane-consistent mint for shard 3, presented to shard 2.
			burn := xshard.NewBurn(f.alice.Address(), f.bob, 100, 1, 2, 1, 3)
			if err := crypto.SignTx(burn, f.alice); err != nil {
				t.Fatal(err)
			}
			blk, _, err := f.src.BuildBlock(f.miner, []*types.Transaction{burn}, f.src.Head().Header.Time+1000)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.src.AddBlock(blk); err != nil {
				t.Fatal(err)
			}
			proof, header, err := f.src.ProveInclusion(burn.Hash())
			if err != nil {
				t.Fatal(err)
			}
			// Lane check fires before the book, so no descendants needed.
			return xshard.NewMint(burn, proof, header, nil)
		}},
		{"unfinalized source header", func(f *xfix, m *types.Transaction) *types.Transaction {
			// A privately mined source block the adversary never buried:
			// internally consistent proof, valid seal, but zero descendant
			// headers — short of the destination's finality depth, so a
			// source-shard member cannot mint off a never-canonical burn.
			burn := m.Mint.Burn
			fake := &types.Header{
				Number:     99,
				ShardID:    1,
				Difficulty: 2,
				TxRoot:     types.TxRoot([]*types.Transaction{burn}),
			}
			if err := pow.Seal(fake, 1<<20); err != nil {
				t.Fatal(err)
			}
			proof, err := types.BuildTxProof([]*types.Transaction{burn}, 0)
			if err != nil {
				t.Fatal(err)
			}
			return xshard.NewMint(burn, proof, fake, nil)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newXFix(t, nil)
			mint := tc.mutate(f, f.burnAndProve(t, 0, 40_000, 7))

			st := f.dst.HeadState()
			root := st.Root()
			r := f.dst.applyTransaction(st, mint, f.miner)
			if r.Status != types.ReceiptInvalid {
				t.Fatalf("status = %s (%s), want invalid", r.Status, r.Err)
			}
			if st.Root() != root {
				t.Fatal("rejected mint mutated state")
			}
			// The producer drops it...
			blk, _, err := f.dst.BuildBlock(f.miner, []*types.Transaction{mint}, f.dst.Head().Header.Time+1000)
			if err != nil {
				t.Fatal(err)
			}
			if len(blk.Txs) != 0 {
				t.Fatal("producer included a forged mint")
			}
			// ...and a hand-built block carrying it is rejected wholesale.
			bad := f.sealAdversarialBlock(t, []*types.Transaction{mint})
			if err := f.dst.AddBlock(bad); !errors.Is(err, ErrInvalidTx) {
				t.Fatalf("adversarial block: got %v, want ErrInvalidTx", err)
			}
		})
	}
}

// TestMintWithoutHeaderBook: a chain with no header book rejects every
// mint — single-shard deployments stay closed.
func TestMintWithoutHeaderBook(t *testing.T) {
	f := newXFix(t, nil)
	mint := f.burnAndProve(t, 0, 40_000, 7)
	closed, err := New(testConfig(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := closed.HeadState()
	r := closed.applyTransaction(st, mint, f.miner)
	if r.Status != types.ReceiptInvalid {
		t.Fatalf("status = %s, want invalid", r.Status)
	}
}

// TestReceiptNeverMintsTwice: the replay-protection property. The same
// receipt is rejected in the same block, in a later block, and the rejection
// is state-neutral.
func TestReceiptNeverMintsTwice(t *testing.T) {
	f := newXFix(t, nil)
	const value = 40_000
	mint := f.burnAndProve(t, 0, value, 7)

	// Same block: the producer keeps only the first copy; a hand-built
	// block with both is rejected wholesale.
	dup := xshard.NewMint(mint.Mint.Burn, mint.Mint.Proof, mint.Mint.Header, mint.Mint.Descendants)
	blk, _, err := f.dst.BuildBlock(f.miner, []*types.Transaction{mint, dup}, f.dst.Head().Header.Time+1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk.Txs) != 1 {
		t.Fatalf("producer mined the same receipt %d times", len(blk.Txs))
	}
	bad := f.sealAdversarialBlock(t, []*types.Transaction{mint, dup})
	if err := f.dst.AddBlock(bad); !errors.Is(err, ErrInvalidTx) {
		t.Fatalf("double-mint block: got %v, want ErrInvalidTx", err)
	}

	// Later block: after the mint is canonical, re-minting is invalid and
	// state-neutral.
	if err := f.dst.AddBlock(blk); err != nil {
		t.Fatal(err)
	}
	if got := f.dst.HeadBalance(f.bob); got != value {
		t.Fatalf("bob = %d after first mint", got)
	}
	st := f.dst.HeadState()
	root := st.Root()
	r := f.dst.applyTransaction(st, dup, f.miner)
	if r.Status != types.ReceiptInvalid {
		t.Fatalf("replay status = %s (%s)", r.Status, r.Err)
	}
	if st.Root() != root {
		t.Fatal("replayed mint mutated state")
	}
	blk2, _, err := f.dst.BuildBlock(f.miner, []*types.Transaction{dup}, f.dst.Head().Header.Time+2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk2.Txs) != 0 {
		t.Fatal("producer re-mined a consumed receipt")
	}
}

// TestReceiptAcrossReorg: the consumed set is per-branch. When the minting
// block is reorged out, the receipt is redeemable on the winning branch —
// and afterwards bob has been paid exactly once on the canonical chain.
func TestReceiptAcrossReorg(t *testing.T) {
	f := newXFix(t, nil)
	const value = 40_000
	mint := f.burnAndProve(t, 0, value, 7)

	// Branch A: mint at height 1.
	branchA := f.mineOnDst(t, mint)
	if got := f.dst.HeadBalance(f.bob); got != value {
		t.Fatalf("bob on branch A = %d", got)
	}

	// Branch B: two empty blocks from genesis win fork choice.
	genesis := f.dst.Genesis()
	b1 := f.sealChildOf(t, genesis.Header, nil)
	if err := f.dst.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	b2 := f.sealChildOf(t, b1.Header, nil)
	if err := f.dst.AddBlock(b2); err != nil {
		t.Fatal(err)
	}
	if f.dst.Head().Hash() == branchA.Hash() {
		t.Fatal("reorg did not happen")
	}
	// The mint is no longer canonical; bob is unpaid on this branch...
	if got := f.dst.HeadBalance(f.bob); got != 0 {
		t.Fatalf("bob after reorg = %d, want 0", got)
	}
	// ...so the receipt redeems here, exactly once.
	blk, _, err := f.dst.BuildBlock(f.miner, []*types.Transaction{mint}, f.dst.Head().Header.Time+1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk.Txs) != 1 {
		t.Fatal("receipt not redeemable on the winning branch")
	}
	if err := f.dst.AddBlock(blk); err != nil {
		t.Fatal(err)
	}
	if got := f.dst.HeadBalance(f.bob); got != value {
		t.Fatalf("bob after re-mint = %d, want exactly %d", got, value)
	}
	// And it is consumed again on the new branch.
	blk2, _, err := f.dst.BuildBlock(f.miner, []*types.Transaction{mint}, f.dst.Head().Header.Time+2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk2.Txs) != 0 {
		t.Fatal("receipt minted twice on one branch")
	}
}

// TestMintValidityIsObjective: the consensus-safety property behind the
// receipts design. A validator that missed every TopicXHeaders announcement
// — its header book is empty and was never fed by gossip — must accept the
// exact block an up-to-date miner produced, because mint validity is a pure
// function of the transaction's carried evidence plus shared consensus
// parameters. Were it keyed on node-local gossip history, the shard would
// fork on message loss.
func TestMintValidityIsObjective(t *testing.T) {
	f := newXFix(t, nil)
	mint := f.burnAndProve(t, 0, 40_000, 7)
	blk := f.mineOnDst(t, mint)
	if len(blk.Txs) != 1 {
		t.Fatalf("mint not mined: %d txs", len(blk.Txs))
	}

	// A second destination validator: same genesis and consensus parameters,
	// cold header book, zero gossip history.
	cfg := testConfig(2)
	cfg.XShard = xshard.NewHeaderBook(1, nil)
	cold, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.AddBlock(blk); err != nil {
		t.Fatalf("cold validator rejected a valid mint block: %v", err)
	}
	if got := cold.HeadBalance(f.bob); got != 40_000 {
		t.Fatalf("bob on cold validator = %d", got)
	}
}

// TestReorgReinjectsDroppedTxs: Config.OnReorg hands back the transactions a
// losing branch confirmed and the winning branch did not — the hook the node
// uses to return reorged-out mints to its pool (the relay's watermark has
// already advanced past them, so nothing upstream would ever resend).
func TestReorgReinjectsDroppedTxs(t *testing.T) {
	f := newXFix(t, nil)
	mint := f.burnAndProve(t, 0, 40_000, 7)

	var dropped []*types.Transaction
	cfg := testConfig(2)
	cfg.XShard = xshard.NewHeaderBook(1, nil)
	cfg.OnReorg = func(txs []*types.Transaction) { dropped = append(dropped, txs...) }
	dst, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.dst = dst

	// Branch A confirms the mint at height 1.
	branchA := f.mineOnDst(t, mint)
	if len(branchA.Txs) != 1 {
		t.Fatal("mint not mined on branch A")
	}
	// Branch B: two empty blocks win fork choice; the mint falls out.
	b1 := f.sealChildOf(t, dst.Genesis().Header, nil)
	if err := dst.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 0 {
		t.Fatalf("hook fired before the reorg: %d txs", len(dropped))
	}
	b2 := f.sealChildOf(t, b1.Header, nil)
	if err := dst.AddBlock(b2); err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 || dropped[0].Hash() != mint.Hash() {
		t.Fatalf("reorged-out mint not handed back: %d txs", len(dropped))
	}
	// A transaction the winning branch re-confirms is NOT handed back.
	dropped = nil
	blk, _, err := dst.BuildBlock(f.miner, []*types.Transaction{mint}, dst.Head().Header.Time+1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.AddBlock(blk); err != nil {
		t.Fatal(err)
	}
	c1 := f.sealChildOf(t, b2.Header, []*types.Transaction{mint})
	if err := dst.AddBlock(c1); err != nil {
		t.Fatal(err)
	}
	c2 := f.sealChildOf(t, c1.Header, nil)
	if err := dst.AddBlock(c2); err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 0 {
		t.Fatalf("re-confirmed mint handed back as dropped: %d txs", len(dropped))
	}
}

// sealChildOf hand-mines an empty block on an arbitrary parent (BuildBlock
// only extends the head, reorg tests need side branches).
func (f *xfix) sealChildOf(t *testing.T, parent *types.Header, txs []*types.Transaction) *types.Block {
	t.Helper()
	st := f.dst.StateAt(parent.Hash())
	if st == nil {
		t.Fatal("no state at parent")
	}
	work := st.Copy()
	receipts, gasUsed, err := f.dst.process(work, txs, f.miner)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range receipts {
		if r.Status == types.ReceiptInvalid {
			t.Fatalf("invalid tx in side block: %s", r.Err)
		}
	}
	h := &types.Header{
		ParentHash: parent.Hash(),
		Number:     parent.Number + 1,
		Time:       parent.Time + 500,
		Difficulty: f.dst.cfg.Difficulty,
		Coinbase:   f.miner,
		StateRoot:  work.Root(),
		ShardID:    2,
		GasLimit:   f.dst.cfg.GasLimit,
		GasUsed:    gasUsed,
	}
	blk := types.NewBlock(h, txs)
	if err := pow.Seal(h, 1<<24); err != nil {
		t.Fatal(err)
	}
	return blk
}

// TestReceiptSurvivesRestart: the tentpole's crash-safety criterion at the
// chain layer. The destination runs on a FileStore; after the mint is
// confirmed the process "crashes" (store closed, everything in memory
// dropped) and a fresh chain recovers from the same directory — recovery
// replays the mint through full verification, which requires the header
// book to have been re-attached first. The receipt stays consumed after
// recovery.
func TestReceiptSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := newXFix(t, s)
	const value = 40_000
	mint := f.burnAndProve(t, 0, value, 7)
	f.mineOnDst(t, mint)
	if err := f.dst.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: reopen the store, re-attach the book BEFORE constructing the
	// chain (recovery replay verifies mints against it), recover.
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	book := xshard.NewHeaderBook(1, nil)
	if err := book.Attach(s2); err != nil {
		t.Fatal(err)
	}
	if book.Len() == 0 {
		t.Fatal("header book empty after restart")
	}
	cfg := testConfig(2)
	cfg.XShard = book
	cfg.Store = s2
	dst, err := New(cfg, nil)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if got := dst.HeadBalance(f.bob); got != value {
		t.Fatalf("bob after recovery = %d, want %d", got, value)
	}
	// The recovered consumed set still blocks a replay.
	blk, _, err := dst.BuildBlock(f.miner, []*types.Transaction{mint}, dst.Head().Header.Time+1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk.Txs) != 0 {
		t.Fatal("receipt minted twice across a restart")
	}
}

// TestBurnRestartBetweenBurnAndMint: the acceptance criterion's restart
// point — the crash happens BETWEEN burn and mint. The burn is mined on the
// source, then the destination restarts; the mint must still verify
// afterwards with no gossip history at all, purely from the evidence it
// carries (the restarted book is empty — and that must not matter).
func TestBurnRestartBetweenBurnAndMint(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := newXFix(t, s)
	const value = 40_000
	mint := f.burnAndProve(t, 0, value, 7) // burn mined, header in the book
	if err := f.dst.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	book := xshard.NewHeaderBook(1, nil)
	if err := book.Attach(s2); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2)
	cfg.XShard = book
	cfg.Store = s2
	dst, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	blk, _, err := dst.BuildBlock(f.miner, []*types.Transaction{mint}, dst.Head().Header.Time+1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.AddBlock(blk); err != nil {
		t.Fatal(err)
	}
	if got := dst.HeadBalance(f.bob); got != value {
		t.Fatalf("bob after restart-then-mint = %d, want %d", got, value)
	}
}

// TestBurnAdversarialShapes: burns with the wrong source shard, equal
// shards, piggybacked payloads, bad nonce or insolvency are all rejected
// state-neutrally on the source chain.
func TestBurnAdversarialShapes(t *testing.T) {
	f := newXFix(t, nil)
	mk := func(mutate func(*types.Transaction)) *types.Transaction {
		burn := xshard.NewBurn(f.alice.Address(), f.bob, 100, 1, 0, 1, 2)
		mutate(burn)
		if err := crypto.SignTx(burn, f.alice); err != nil {
			t.Fatal(err)
		}
		return burn
	}
	cases := []struct {
		name string
		tx   *types.Transaction
	}{
		{"wrong source shard", mk(func(b *types.Transaction) { b.SrcShard = 3 })},
		{"source equals destination", mk(func(b *types.Transaction) { b.DstShard = 1 })},
		{"piggybacked data", mk(func(b *types.Transaction) { b.Data = []byte{1} })},
		{"piggybacked gas", mk(func(b *types.Transaction) { b.Gas = 5 })},
		{"bad nonce", mk(func(b *types.Transaction) { b.Nonce = 9 })},
		{"insolvent", mk(func(b *types.Transaction) { b.Value = 2_000_000 })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := f.src.HeadState()
			root := st.Root()
			r := f.src.applyTransaction(st, tc.tx, f.miner)
			if r.Status != types.ReceiptInvalid {
				t.Fatalf("status = %s (%s), want invalid", r.Status, r.Err)
			}
			if st.Root() != root {
				t.Fatal("rejected burn mutated state")
			}
		})
	}
}

// TestXShardDifferentialFuzz extends the serial-vs-parallel differential
// fuzz with the cross-shard kinds: valid and invalid burns, valid mints,
// duplicate mints (same receipt twice in one body) and tampered mints, all
// interleaved with plain transfers that touch the same accounts the mints
// credit. Both engines must produce bit-identical receipts, gas and roots.
func TestXShardDifferentialFuzz(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)*104729 + 3))

			signers := make([]*crypto.Keypair, 4)
			alloc := make(map[types.Address]uint64)
			for i := range signers {
				signers[i] = crypto.KeypairFromSeed(fmt.Sprintf("xfuzz-%d-%d", trial, i))
				alloc[signers[i].Address()] = 1_000_000
			}
			coinbase := types.BytesToAddress([]byte{0xA1})

			// Source world: shard 9 mines burns destined for shard 1 (the
			// twin chains), crediting the same signer accounts the local
			// transfers fight over.
			srcSigner := crypto.KeypairFromSeed(fmt.Sprintf("xfuzz-src-%d", trial))
			srcChain, err := New(testConfig(9), map[types.Address]uint64{srcSigner.Address(): 1_000_000})
			if err != nil {
				t.Fatal(err)
			}
			book := xshard.NewHeaderBook(0, nil)
			nBurns := 2 + rng.Intn(3)
			mints := make([]*types.Transaction, 0, nBurns)
			for i := 0; i < nBurns; i++ {
				burn := xshard.NewBurn(srcSigner.Address(), signers[rng.Intn(len(signers))].Address(),
					uint64(100+rng.Intn(900)), uint64(1+rng.Intn(4)), uint64(i), 9, 1)
				if err := crypto.SignTx(burn, srcSigner); err != nil {
					t.Fatal(err)
				}
				blk, _, err := srcChain.BuildBlock(coinbase, []*types.Transaction{burn}, srcChain.Head().Header.Time+1000)
				if err != nil {
					t.Fatal(err)
				}
				if err := srcChain.AddBlock(blk); err != nil {
					t.Fatal(err)
				}
				proof, header, err := srcChain.ProveInclusion(burn.Hash())
				if err != nil {
					t.Fatal(err)
				}
				if err := book.Add(header); err != nil {
					t.Fatal(err)
				}
				mints = append(mints, xshard.NewMint(burn, proof, header, nil))
			}

			mk := func(workers int) *Chain {
				cfg := testConfig(1)
				cfg.ExecWorkers = workers
				cfg.MaxBlockTxs = 1 << 16
				cfg.GasLimit = math.MaxUint64
				cfg.XShard = book
				c, err := New(cfg, alloc)
				if err != nil {
					t.Fatal(err)
				}
				return c
			}
			serialC, parallelC := mk(0), mk(8)

			nonces := make(map[types.Address]uint64)
			var txs []*types.Transaction
			for _, m := range mints {
				txs = append(txs, m)
				if rng.Intn(2) == 0 { // duplicate delivery: second copy invalid
					txs = append(txs, xshard.NewMint(m.Mint.Burn, m.Mint.Proof, m.Mint.Header, nil))
				}
				if rng.Intn(2) == 0 { // tampered amount: invalid
					bad := xshard.NewMint(m.Mint.Burn, m.Mint.Proof, m.Mint.Header, nil)
					bad.Value++
					txs = append(txs, bad)
				}
			}
			n := 10 + rng.Intn(20)
			for i := 0; i < n; i++ {
				from := signers[rng.Intn(len(signers))]
				switch rng.Intn(4) {
				case 0: // valid burn off shard 1
					burn := xshard.NewBurn(from.Address(), signers[rng.Intn(len(signers))].Address(),
						uint64(rng.Intn(300)), uint64(1+rng.Intn(4)), nonces[from.Address()], 1, 2)
					if err := crypto.SignTx(burn, from); err != nil {
						t.Fatal(err)
					}
					nonces[from.Address()]++
					txs = append(txs, burn)
				case 1: // burn naming the wrong source shard: invalid
					burn := xshard.NewBurn(from.Address(), signers[0].Address(),
						50, 1, nonces[from.Address()], 3, 2)
					if err := crypto.SignTx(burn, from); err != nil {
						t.Fatal(err)
					}
					txs = append(txs, burn)
				default: // plain transfer, often to a mint recipient
					tx := &types.Transaction{
						Nonce: nonces[from.Address()],
						From:  from.Address(),
						To:    signers[rng.Intn(len(signers))].Address(),
						Value: uint64(rng.Intn(400)),
						Fee:   uint64(1 + rng.Intn(4)),
					}
					if err := crypto.SignTx(tx, from); err != nil {
						t.Fatal(err)
					}
					nonces[from.Address()]++
					txs = append(txs, tx)
				}
			}
			// Shuffle so mints land between the transfers they conflict with.
			rng.Shuffle(len(txs), func(i, j int) { txs[i], txs[j] = txs[j], txs[i] })

			stS, stP := serialC.HeadState(), parallelC.HeadState()
			rsS, gasS, errS := serialC.process(stS, txs, coinbase)
			rsP, gasP, errP := parallelC.process(stP, txs, coinbase)
			if errS != nil || errP != nil {
				t.Fatalf("process errors: serial %v parallel %v", errS, errP)
			}
			if gasS != gasP {
				t.Fatalf("gas diverges: serial %d parallel %d", gasS, gasP)
			}
			if !reflect.DeepEqual(rsS, rsP) {
				for i := range rsS {
					if !reflect.DeepEqual(rsS[i], rsP[i]) {
						t.Errorf("receipt %d diverges:\nserial   %+v\nparallel %+v", i, rsS[i], rsP[i])
					}
				}
				t.Fatal("receipts diverge")
			}
			if stS.Root() != stP.Root() {
				t.Fatalf("state roots diverge: serial %s parallel %s", stS.Root(), stP.Root())
			}
		})
	}
}
