// Package store is the durable storage layer under a shard chain: an
// append-only block log plus a key-value state backend, behind one Store
// interface with an in-memory implementation (the test and simulation
// default) and an on-disk file-backed implementation (cmd/shardnode
// -datadir).
//
// The split mirrors how the chain uses storage. Blocks are written exactly
// once, in topological order (a parent is always appended before its
// children), and are only ever read back as a whole scan during
// crash-recovery replay — an append-only log of length-prefixed, checksummed
// records is the exact shape of that access pattern. Everything derived —
// canonical index, transaction index, head state — is rebuilt from the log
// on open, so the log is the single source of truth and recovery never
// trusts a secondary structure that could have torn separately. The
// key-value side holds the small mutable leftovers: the genesis pin that
// ties a store to one ledger, and the flat-state checkpoints the chain
// drops every N blocks so replay cost is bounded by the checkpoint cadence
// instead of the chain length (DESIGN.md "Durable storage and recovery
// invariants").
package store

import "errors"

// Errors shared by the implementations.
var (
	// ErrClosed is returned by every operation on a closed store.
	ErrClosed = errors.New("store: closed")
	// ErrCorrupt reports a structurally invalid record before the log tail.
	// A torn *tail* record is not an error — crash recovery drops it — but
	// corruption before the tail means the medium lied.
	ErrCorrupt = errors.New("store: corrupt record")
	// ErrRange reports an out-of-range block index.
	ErrRange = errors.New("store: block index out of range")
)

// Store persists one shard ledger. Implementations are safe for concurrent
// use. Writes become durable at the latest on a successful Flush; a crash
// between writes may lose the un-flushed suffix but never corrupts what a
// prior Flush covered, and a crash mid-append costs at most the record
// being appended (the torn tail is detected and dropped on open).
type Store interface {
	// AppendBlock appends one encoded block to the block log.
	AppendBlock(raw []byte) error
	// Blocks replays the log in append order. Returning an error from fn
	// stops the scan and surfaces that error.
	Blocks(fn func(i int, raw []byte) error) error
	// BlockCount reports the number of records in the block log.
	BlockCount() int
	// TruncateBlocks discards every record from index keep onward, so a
	// recovery that rejects a mid-log record can cut the log back to its
	// last coherent prefix before appending continues.
	TruncateBlocks(keep int) error

	// Put stores a key-value pair in the state backend (last write wins).
	Put(key string, value []byte) error
	// Get reads a key; ok is false when the key is absent.
	Get(key string) (value []byte, ok bool)
	// Delete removes a key; deleting an absent key is a no-op.
	Delete(key string) error

	// Flush makes every prior write durable.
	Flush() error
	// Close flushes and releases the store. Further use returns ErrClosed.
	Close() error
}
