package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// The log record format, shared by the block log and the key-value log:
//
//	record := length(4, big-endian) || crc32c(4, big-endian) || payload
//
// The checksum covers the payload only; the length is validated against the
// remaining bytes, so every way a record can tear — a partial header, a
// length pointing past the write that made it, a payload cut short, payload
// bytes flipped — fails either the bounds check or the checksum. scanRecords
// distinguishes the one legal failure (a torn tail, the suffix written by an
// append the crash interrupted) from corruption in the body of the log.

// recordHeaderSize is the fixed per-record framing overhead.
const recordHeaderSize = 8

// maxRecordSize bounds a single record. It exists so a corrupt length field
// cannot make a reader allocate gigabytes; real payloads (blocks, state
// checkpoints) are far smaller.
const maxRecordSize = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendRecord appends the framed payload to dst and returns the result.
func appendRecord(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// parseRecord reads one record at the start of data. It returns the payload
// (aliasing data) and the total framed size, or ok=false when data does not
// begin with a complete, checksum-valid record.
func parseRecord(data []byte) (payload []byte, size int, ok bool) {
	if len(data) < recordHeaderSize {
		return nil, 0, false
	}
	n := binary.BigEndian.Uint32(data)
	if n > maxRecordSize || uint64(recordHeaderSize)+uint64(n) > uint64(len(data)) {
		return nil, 0, false
	}
	sum := binary.BigEndian.Uint32(data[4:])
	payload = data[recordHeaderSize : recordHeaderSize+int(n)]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, 0, false
	}
	return payload, recordHeaderSize + int(n), true
}

// scanRecords walks every complete record in data, calling fn with each
// record's byte offset and payload. It returns the number of bytes covered
// by valid records — a torn tail (any invalid suffix) is excluded, which is
// how both logs discard the record a crash interrupted. An error from fn
// stops the scan.
func scanRecords(data []byte, fn func(off int64, payload []byte) error) (valid int64, err error) {
	off := 0
	for off < len(data) {
		payload, size, ok := parseRecord(data[off:])
		if !ok {
			break
		}
		if fn != nil {
			if err := fn(int64(off), payload); err != nil {
				return int64(off), err
			}
		}
		off += size
	}
	return int64(off), nil
}

// errCorruptAt builds an ErrCorrupt with position context.
func errCorruptAt(what string, off int64) error {
	return fmt.Errorf("%w: %s at offset %d", ErrCorrupt, what, off)
}
