package store

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestRecordRoundTripProperty is the record-format property test: random
// payloads of random sizes survive encode → concatenate → scan bit-exactly,
// in order, regardless of content (including payloads that look like record
// headers).
func TestRecordRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(20)
		payloads := make([][]byte, n)
		var log []byte
		for i := range payloads {
			size := rng.Intn(1 << uint(rng.Intn(12))) // skewed toward small
			p := make([]byte, size)
			rng.Read(p)
			payloads[i] = p
			log = appendRecord(log, p)
		}
		var got [][]byte
		valid, err := scanRecords(log, func(off int64, payload []byte) error {
			got = append(got, append([]byte(nil), payload...))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if valid != int64(len(log)) {
			t.Fatalf("trial %d: valid %d of %d bytes", trial, valid, len(log))
		}
		if len(got) != n {
			t.Fatalf("trial %d: %d records, want %d", trial, len(got), n)
		}
		for i := range got {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("trial %d: record %d corrupted in round trip", trial, i)
			}
		}
	}
}

// TestRecordTornTailEveryOffset truncates a log at every byte offset inside
// the final record and checks that scanning always recovers exactly the
// records before it — the torn record never partially surfaces.
func TestRecordTornTailEveryOffset(t *testing.T) {
	var log []byte
	payloads := [][]byte{
		[]byte("first"),
		[]byte("second record, a bit longer"),
		bytes.Repeat([]byte{0xAB}, 100),
	}
	var lastStart int
	for i, p := range payloads {
		if i == len(payloads)-1 {
			lastStart = len(log)
		}
		log = appendRecord(log, p)
	}
	for cut := lastStart; cut < len(log); cut++ {
		count := 0
		valid, err := scanRecords(log[:cut], func(off int64, payload []byte) error {
			count++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != len(payloads)-1 {
			t.Fatalf("cut at %d: %d records, want %d", cut, count, len(payloads)-1)
		}
		if valid != int64(lastStart) {
			t.Fatalf("cut at %d: valid prefix %d, want %d", cut, valid, lastStart)
		}
	}
}

// TestRecordBitFlipDetected flips each byte of a record and checks the
// checksum (or framing) rejects it.
func TestRecordBitFlipDetected(t *testing.T) {
	payload := []byte("consensus-critical payload")
	good := appendRecord(nil, payload)
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x01
		_, size, ok := parseRecord(bad)
		if ok && bytes.Equal(bad[recordHeaderSize:size], payload) {
			// The only acceptable "ok" outcome would be a flip that still
			// yields the same payload, which a single-bit flip cannot.
			t.Fatalf("flip at byte %d went undetected", i)
		}
		if ok {
			t.Fatalf("flip at byte %d produced a different valid record", i)
		}
	}
}

// TestRecordHugeLengthRejected checks that a corrupt length field cannot
// force a huge allocation or a false positive.
func TestRecordHugeLengthRejected(t *testing.T) {
	log := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 1, 2, 3}
	valid, err := scanRecords(log, nil)
	if err != nil {
		t.Fatal(err)
	}
	if valid != 0 {
		t.Fatalf("valid prefix %d for garbage header", valid)
	}
}
