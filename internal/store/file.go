package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"contractshard/internal/types"
)

// File names inside a FileStore directory. Exported so tests (and tools)
// can reach into a datadir for crash injection without guessing.
const (
	// BlocksLogName is the append-only block log.
	BlocksLogName = "blocks.log"
	// StateLogName is the key-value state log (checkpoints and metadata).
	StateLogName = "state.log"
)

// kvOp codes inside a state-log record.
const (
	kvOpPut uint64 = iota
	kvOpDelete
)

// compactSlack is how many bytes of key-value log garbage are tolerated
// before the log is rewritten compacted. Compaction triggers when the log
// exceeds twice the live data plus this slack, so small stores never churn.
const compactSlack = 1 << 16

// FileStore is the on-disk Store: two append-only record logs in one
// directory. blocks.log holds encoded blocks; state.log holds key-value
// operations replayed last-write-wins into memory on open. Both logs
// tolerate a torn tail — Open truncates any invalid suffix, which is
// exactly the record a crash interrupted — and the key-value log is
// rewritten compacted when its garbage outgrows the live data.
type FileStore struct {
	mu     sync.Mutex
	dir    string
	closed bool

	blocksF    *os.File
	offsets    []int64 // byte offset of each block record
	blocksSize int64

	kvF    *os.File
	kv     map[string][]byte
	kvSize int64 // bytes in state.log
	kvLive int64 // bytes the live pairs would occupy compacted
}

// Open opens (creating if needed) the file store in dir, recovering both
// logs: torn tails are truncated away, and the key-value map is replayed
// into memory.
func Open(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &FileStore{dir: dir, kv: make(map[string][]byte)}
	if err := s.openBlocks(); err != nil {
		return nil, err
	}
	if err := s.openKV(); err != nil {
		return nil, closeOnErr(err, s.blocksF)
	}
	return s, nil
}

// closeOnErr closes f while propagating the error that made the caller bail
// out; a secondary close failure is folded into the message rather than
// masking the root cause.
func closeOnErr(err error, f *os.File) error {
	if cerr := f.Close(); cerr != nil {
		return fmt.Errorf("%w (also failed to close %s: %v)", err, f.Name(), cerr)
	}
	return err
}

// Dir returns the store's directory.
func (s *FileStore) Dir() string { return s.dir }

// openLog reads, recovers and opens one record log: scan pulls every valid
// record out of the raw contents, any torn tail past the valid prefix is
// truncated away, and the returned handle is positioned at the end.
func openLog(path string, scan func(data []byte) (int64, error)) (*os.File, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	valid, err := scan(data)
	if err != nil {
		return nil, 0, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	if valid < int64(len(data)) {
		// Torn tail from an interrupted append: cut the log back to its last
		// complete record so future appends extend a coherent prefix.
		if err := f.Truncate(valid); err != nil {
			return nil, 0, closeOnErr(fmt.Errorf("store: truncating torn log: %w", err), f)
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		return nil, 0, closeOnErr(fmt.Errorf("store: %w", err), f)
	}
	return f, valid, nil
}

// openBlocks scans blocks.log, recording per-record offsets.
func (s *FileStore) openBlocks() error {
	f, size, err := openLog(filepath.Join(s.dir, BlocksLogName), func(data []byte) (int64, error) {
		return scanRecords(data, func(off int64, payload []byte) error {
			s.offsets = append(s.offsets, off)
			return nil
		})
	})
	if err != nil {
		return err
	}
	s.blocksF = f
	s.blocksSize = size
	return nil
}

// openKV replays state.log into the in-memory map and compacts the log when
// garbage dominates.
func (s *FileStore) openKV() error {
	f, size, err := openLog(filepath.Join(s.dir, StateLogName), func(data []byte) (int64, error) {
		return scanRecords(data, func(off int64, payload []byte) error {
			op, key, value, err := decodeKVRecord(payload)
			if err != nil {
				// The framing was valid but the payload is not a key-value
				// operation: that is corruption, not a torn tail.
				return errCorruptAt("state log record", off)
			}
			s.applyKV(op, key, value)
			return nil
		})
	})
	if err != nil {
		return err
	}
	s.kvF = f
	s.kvSize = size
	if s.kvSize > 2*s.kvLive+compactSlack {
		return s.compactKVLocked()
	}
	return nil
}

// applyKV folds one replayed operation into the map and the live-size
// estimate.
func (s *FileStore) applyKV(op uint64, key string, value []byte) {
	if old, ok := s.kv[key]; ok {
		s.kvLive -= kvPairSize(key, old)
	}
	if op == kvOpDelete {
		delete(s.kv, key)
		return
	}
	s.kv[key] = append([]byte(nil), value...)
	s.kvLive += kvPairSize(key, value)
}

func kvPairSize(key string, value []byte) int64 {
	return int64(recordHeaderSize + len(key) + len(value) + 16)
}

// encodeKVRecord builds a state-log record payload.
func encodeKVRecord(op uint64, key string, value []byte) []byte {
	e := types.NewEncoder()
	e.WriteUint64(op)
	e.WriteBytes([]byte(key))
	e.WriteBytes(value)
	return e.Bytes()
}

// decodeKVRecord parses a state-log record payload.
func decodeKVRecord(payload []byte) (op uint64, key string, value []byte, err error) {
	d := types.NewDecoder(payload)
	if op, err = d.ReadUint64(); err != nil {
		return 0, "", nil, err
	}
	k, err := d.ReadBytes()
	if err != nil {
		return 0, "", nil, err
	}
	if value, err = d.ReadBytes(); err != nil {
		return 0, "", nil, err
	}
	if d.Remaining() != 0 {
		return 0, "", nil, fmt.Errorf("%w: %d trailing bytes in state record", ErrCorrupt, d.Remaining())
	}
	return op, string(k), value, nil
}

// compactKVLocked rewrites state.log holding only the live pairs, via a
// temporary file renamed into place so a crash mid-compaction leaves the
// original log untouched. Caller holds s.mu (or is the opening goroutine).
func (s *FileStore) compactKVLocked() error {
	keys := make([]string, 0, len(s.kv))
	for k := range s.kv {
		keys = append(keys, k)
	}
	// Sorted for a deterministic on-disk image; replay is order-independent
	// for distinct keys but equal stores should produce equal files.
	sort.Strings(keys)
	var buf []byte
	for _, k := range keys {
		buf = appendRecord(buf, encodeKVRecord(kvOpPut, k, s.kv[k]))
	}
	path := filepath.Join(s.dir, StateLogName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("store: compacting state log: %w", err)
	}
	if s.kvF != nil {
		if err := s.kvF.Close(); err != nil {
			return fmt.Errorf("store: compacting state log: %w", err)
		}
		s.kvF = nil
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: compacting state log: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Seek(int64(len(buf)), 0); err != nil {
		return closeOnErr(fmt.Errorf("store: %w", err), f)
	}
	s.kvF = f
	s.kvSize = int64(len(buf))
	return nil
}

// AppendBlock appends one framed block record to blocks.log.
func (s *FileStore) AppendBlock(raw []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	record := appendRecord(nil, raw)
	if _, err := s.blocksF.Write(record); err != nil {
		// Cut any partial write back off so the in-process view and the file
		// stay coherent; recovery would have dropped the torn record anyway,
		// so a truncate failure only degrades to that already-handled case.
		if terr := s.blocksF.Truncate(s.blocksSize); terr != nil {
			return fmt.Errorf("store: appending block: %w (and truncate failed: %v)", err, terr)
		}
		return fmt.Errorf("store: appending block: %w", err)
	}
	s.offsets = append(s.offsets, s.blocksSize)
	s.blocksSize += int64(len(record))
	return nil
}

// Blocks replays blocks.log in append order.
func (s *FileStore) Blocks(fn func(i int, raw []byte) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	data, err := os.ReadFile(filepath.Join(s.dir, BlocksLogName))
	size := s.blocksSize
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if int64(len(data)) > size {
		// Appends may have raced the read; serve the prefix this call
		// observed consistently with its record count.
		data = data[:size]
	}
	i := 0
	_, err = scanRecords(data, func(off int64, payload []byte) error {
		err := fn(i, payload)
		i++
		return err
	})
	return err
}

// BlockCount reports the number of records in blocks.log.
func (s *FileStore) BlockCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.offsets)
}

// TruncateBlocks discards block records from index keep onward.
func (s *FileStore) TruncateBlocks(keep int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if keep < 0 || keep > len(s.offsets) {
		return ErrRange
	}
	if keep == len(s.offsets) {
		return nil
	}
	cut := s.offsets[keep]
	if err := s.blocksF.Truncate(cut); err != nil {
		return fmt.Errorf("store: truncating block log: %w", err)
	}
	if _, err := s.blocksF.Seek(cut, 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.offsets = s.offsets[:keep]
	s.blocksSize = cut
	return nil
}

// Put appends a put record to state.log and updates the in-memory map.
func (s *FileStore) Put(key string, value []byte) error {
	return s.writeKV(kvOpPut, key, value)
}

// Delete appends a delete record to state.log and updates the map.
func (s *FileStore) Delete(key string) error {
	return s.writeKV(kvOpDelete, key, nil)
}

func (s *FileStore) writeKV(op uint64, key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	record := appendRecord(nil, encodeKVRecord(op, key, value))
	if _, err := s.kvF.Write(record); err != nil {
		if terr := s.kvF.Truncate(s.kvSize); terr != nil {
			return fmt.Errorf("store: writing state log: %w (and truncate failed: %v)", err, terr)
		}
		return fmt.Errorf("store: writing state log: %w", err)
	}
	s.kvSize += int64(len(record))
	s.applyKV(op, key, value)
	if s.kvSize > 2*s.kvLive+compactSlack {
		return s.compactKVLocked()
	}
	return nil
}

// Get reads a key from the in-memory replay of state.log.
func (s *FileStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.kv[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Flush fsyncs both logs.
func (s *FileStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.blocksF.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.kvF.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close flushes and closes both logs.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	var firstErr error
	for _, step := range []func() error{
		s.blocksF.Sync, s.kvF.Sync, s.blocksF.Close, s.kvF.Close,
	} {
		if err := step(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return fmt.Errorf("store: close: %w", firstErr)
	}
	return nil
}
