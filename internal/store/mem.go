package store

import "sync"

// MemStore is the in-memory Store: the default for tests and simulations,
// where durability is irrelevant but the chain still wants the same
// append/scan/checkpoint interface it runs against on disk. All data is
// lost when the process exits; Flush is a no-op.
type MemStore struct {
	mu     sync.Mutex
	blocks [][]byte
	kv     map[string][]byte
	closed bool
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore {
	return &MemStore{kv: make(map[string][]byte)}
}

// AppendBlock appends a copy of raw to the block log.
func (m *MemStore) AppendBlock(raw []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.blocks = append(m.blocks, append([]byte(nil), raw...))
	return nil
}

// Blocks replays the log in append order.
func (m *MemStore) Blocks(fn func(i int, raw []byte) error) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	// Snapshot the slice so fn (which may re-enter the store) runs unlocked;
	// records are immutable once appended.
	blocks := make([][]byte, len(m.blocks))
	copy(blocks, m.blocks)
	m.mu.Unlock()
	for i, raw := range blocks {
		if err := fn(i, raw); err != nil {
			return err
		}
	}
	return nil
}

// BlockCount reports the number of records in the block log.
func (m *MemStore) BlockCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blocks)
}

// TruncateBlocks discards records from index keep onward.
func (m *MemStore) TruncateBlocks(keep int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if keep < 0 || keep > len(m.blocks) {
		return ErrRange
	}
	m.blocks = m.blocks[:keep]
	return nil
}

// Put stores a copy of value under key.
func (m *MemStore) Put(key string, value []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.kv[key] = append([]byte(nil), value...)
	return nil
}

// Get reads a key.
func (m *MemStore) Get(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.kv[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Delete removes a key.
func (m *MemStore) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	delete(m.kv, key)
	return nil
}

// Flush is a no-op: memory is as durable as a MemStore gets.
func (m *MemStore) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	return nil
}

// Close marks the store closed.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.closed = true
	return nil
}
