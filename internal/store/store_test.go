package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// conformance runs the same behavioral suite against any Store, so the
// in-memory and file-backed implementations cannot drift apart.
func conformance(t *testing.T, open func(t *testing.T) Store) {
	t.Helper()

	t.Run("blocks", func(t *testing.T) {
		s := open(t)
		defer mustClose(t, s)
		want := [][]byte{[]byte("b0"), []byte("b1"), []byte("block two")}
		for _, b := range want {
			if err := s.AppendBlock(b); err != nil {
				t.Fatal(err)
			}
		}
		if n := s.BlockCount(); n != len(want) {
			t.Fatalf("BlockCount %d, want %d", n, len(want))
		}
		var got [][]byte
		if err := s.Blocks(func(i int, raw []byte) error {
			if i != len(got) {
				return fmt.Errorf("index %d out of order", i)
			}
			got = append(got, append([]byte(nil), raw...))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("block %d: got %q want %q", i, got[i], want[i])
			}
		}
		if err := s.TruncateBlocks(1); err != nil {
			t.Fatal(err)
		}
		if n := s.BlockCount(); n != 1 {
			t.Fatalf("BlockCount after truncate %d, want 1", n)
		}
		if err := s.AppendBlock([]byte("replacement")); err != nil {
			t.Fatal(err)
		}
		got = got[:0]
		if err := s.Blocks(func(i int, raw []byte) error {
			got = append(got, append([]byte(nil), raw...))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || !bytes.Equal(got[1], []byte("replacement")) {
			t.Fatalf("log after truncate+append: %q", got)
		}
		if err := s.TruncateBlocks(5); !errors.Is(err, ErrRange) {
			t.Fatalf("out-of-range truncate: %v", err)
		}
	})

	t.Run("kv", func(t *testing.T) {
		s := open(t)
		defer mustClose(t, s)
		if _, ok := s.Get("missing"); ok {
			t.Fatal("Get on empty store")
		}
		if err := s.Put("a", []byte("1")); err != nil {
			t.Fatal(err)
		}
		if err := s.Put("a", []byte("2")); err != nil {
			t.Fatal(err)
		}
		if v, ok := s.Get("a"); !ok || string(v) != "2" {
			t.Fatalf("Get a: %q %v", v, ok)
		}
		if err := s.Delete("a"); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get("a"); ok {
			t.Fatal("deleted key still present")
		}
		if err := s.Delete("never-existed"); err != nil {
			t.Fatal(err)
		}
		// Mutating the returned value must not corrupt the store.
		if err := s.Put("iso", []byte("xyz")); err != nil {
			t.Fatal(err)
		}
		v, _ := s.Get("iso")
		v[0] = '!'
		if v2, _ := s.Get("iso"); string(v2) != "xyz" {
			t.Fatalf("aliasing: store value became %q", v2)
		}
	})

	t.Run("closed", func(t *testing.T) {
		s := open(t)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := s.AppendBlock([]byte("x")); !errors.Is(err, ErrClosed) {
			t.Fatalf("append after close: %v", err)
		}
		if err := s.Put("k", nil); !errors.Is(err, ErrClosed) {
			t.Fatalf("put after close: %v", err)
		}
		if err := s.Flush(); !errors.Is(err, ErrClosed) {
			t.Fatalf("flush after close: %v", err)
		}
		if err := s.Close(); !errors.Is(err, ErrClosed) {
			t.Fatalf("double close: %v", err)
		}
	})
}

func mustClose(t *testing.T, s Store) {
	t.Helper()
	if err := s.Close(); err != nil && !errors.Is(err, ErrClosed) {
		t.Fatal(err)
	}
}

func TestMemStoreConformance(t *testing.T) {
	conformance(t, func(t *testing.T) Store { return NewMem() })
}

func TestFileStoreConformance(t *testing.T) {
	conformance(t, func(t *testing.T) Store {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

// TestFileStoreReopen checks that both logs survive a clean close/reopen.
func TestFileStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.AppendBlock([]byte(fmt.Sprintf("block-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("head", []byte("h5")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("gone", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, s2)
	if n := s2.BlockCount(); n != 5 {
		t.Fatalf("reopened BlockCount %d", n)
	}
	if err := s2.Blocks(func(i int, raw []byte) error {
		if want := fmt.Sprintf("block-%d", i); string(raw) != want {
			return fmt.Errorf("block %d: %q", i, raw)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v, ok := s2.Get("head"); !ok || string(v) != "h5" {
		t.Fatalf("reopened head: %q %v", v, ok)
	}
	if _, ok := s2.Get("gone"); ok {
		t.Fatal("delete did not survive reopen")
	}
}

// TestFileStoreTornBlockTail simulates a crash mid-append: the block log is
// truncated at every byte offset of its final record, and reopening must
// recover every earlier record with the torn one dropped — and keep the log
// appendable from that point.
func TestFileStoreTornBlockTail(t *testing.T) {
	master := t.TempDir()
	s, err := Open(master)
	if err != nil {
		t.Fatal(err)
	}
	blocks := [][]byte{[]byte("alpha"), []byte("beta"), bytes.Repeat([]byte{7}, 64)}
	for _, b := range blocks {
		if err := s.AppendBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	logBytes, err := os.ReadFile(filepath.Join(master, BlocksLogName))
	if err != nil {
		t.Fatal(err)
	}
	lastStart := len(logBytes) - (recordHeaderSize + len(blocks[2]))

	for cut := lastStart; cut < len(logBytes); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, BlocksLogName), logBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if n := s2.BlockCount(); n != 2 {
			t.Fatalf("cut %d: recovered %d blocks, want 2", cut, n)
		}
		if err := s2.AppendBlock([]byte("after-crash")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		var last []byte
		if err := s2.Blocks(func(i int, raw []byte) error {
			last = append([]byte(nil), raw...)
			return nil
		}); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if string(last) != "after-crash" {
			t.Fatalf("cut %d: post-recovery append not last: %q", cut, last)
		}
		mustClose(t, s2)
	}
}

// TestFileStoreTornKVTail does the same for the key-value log: a torn tail
// loses only the interrupted operation.
func TestFileStoreTornKVTail(t *testing.T) {
	master := t.TempDir()
	s, err := Open(master)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("stable", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("torn", []byte("this operation gets interrupted")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	logBytes, err := os.ReadFile(filepath.Join(master, StateLogName))
	if err != nil {
		t.Fatal(err)
	}
	payload := encodeKVRecord(kvOpPut, "torn", []byte("this operation gets interrupted"))
	lastStart := len(logBytes) - (recordHeaderSize + len(payload))

	for cut := lastStart; cut < len(logBytes); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, StateLogName), logBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if v, ok := s2.Get("stable"); !ok || string(v) != "yes" {
			t.Fatalf("cut %d: stable key lost: %q %v", cut, v, ok)
		}
		if _, ok := s2.Get("torn"); ok {
			t.Fatalf("cut %d: torn put surfaced", cut)
		}
		mustClose(t, s2)
	}
}

// TestFileStoreKVCompaction overwrites one key until the log crosses the
// compaction threshold and checks the live data survives with the log
// shrunk back near the live size.
func TestFileStoreKVCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	value := bytes.Repeat([]byte{0xCC}, 2048)
	for i := 0; i < 200; i++ {
		if err := s.Put("hot", value); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("cold", []byte("keep me")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dir, StateLogName))
	if err != nil {
		t.Fatal(err)
	}
	// 200 overwrites of a 2 KiB value would be ~400 KiB un-compacted; the
	// live data is ~2 KiB. Allow generous slack over the threshold formula.
	if info.Size() > 3*int64(len(value))+2*compactSlack {
		t.Fatalf("state log %d bytes: compaction never ran", info.Size())
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, s2)
	if v, ok := s2.Get("hot"); !ok || !bytes.Equal(v, value) {
		t.Fatal("hot key lost in compaction")
	}
	if v, ok := s2.Get("cold"); !ok || string(v) != "keep me" {
		t.Fatalf("cold key lost in compaction: %q %v", v, ok)
	}
}

// TestFileStoreCorruptMidLogKV: corruption before the tail of the state log
// (framing valid, payload garbage) must be reported, not silently dropped.
func TestFileStoreCorruptMidLogKV(t *testing.T) {
	dir := t.TempDir()
	var log []byte
	log = appendRecord(log, []byte("not a kv record"))
	log = appendRecord(log, encodeKVRecord(kvOpPut, "k", []byte("v")))
	if err := os.WriteFile(filepath.Join(dir, StateLogName), log, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt kv record: %v", err)
	}
}
