package vrf

import (
	"fmt"
	"testing"

	"contractshard/internal/crypto"
)

func TestEvaluateVerify(t *testing.T) {
	k := crypto.KeypairFromSeed("vrf-a")
	out, proof := Evaluate(k, []byte("epoch-1"))
	if !Verify(k.Public, []byte("epoch-1"), out, proof) {
		t.Fatal("valid evaluation rejected")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	k := crypto.KeypairFromSeed("vrf-a")
	o1, p1 := Evaluate(k, []byte("x"))
	o2, p2 := Evaluate(k, []byte("x"))
	if o1 != o2 || string(p1) != string(p2) {
		t.Fatal("VRF must be deterministic for an honest signer")
	}
}

func TestDistinctInputsDistinctOutputs(t *testing.T) {
	k := crypto.KeypairFromSeed("vrf-a")
	o1, _ := Evaluate(k, []byte("x"))
	o2, _ := Evaluate(k, []byte("y"))
	if o1 == o2 {
		t.Fatal("distinct inputs yielded the same output")
	}
}

func TestVerifyRejections(t *testing.T) {
	k := crypto.KeypairFromSeed("vrf-a")
	other := crypto.KeypairFromSeed("vrf-b")
	out, proof := Evaluate(k, []byte("x"))

	if Verify(other.Public, []byte("x"), out, proof) {
		t.Fatal("wrong key accepted")
	}
	if Verify(k.Public, []byte("y"), out, proof) {
		t.Fatal("wrong input accepted")
	}
	badOut := out
	badOut[0] ^= 1
	if Verify(k.Public, []byte("x"), badOut, proof) {
		t.Fatal("wrong output accepted")
	}
	badProof := append([]byte(nil), proof...)
	badProof[0] ^= 1
	if Verify(k.Public, []byte("x"), out, badProof) {
		t.Fatal("tampered proof accepted")
	}
}

func TestElectLeaderDeterministicAndVerifiable(t *testing.T) {
	input := []byte("election-42")
	var cands []Candidate
	for i := 0; i < 8; i++ {
		k := crypto.KeypairFromSeed(fmt.Sprintf("cand-%d", i))
		out, proof := Evaluate(k, input)
		cands = append(cands, Candidate{Pub: k.Public, Output: out, Proof: proof})
	}
	w1 := ElectLeader(input, cands)
	w2 := ElectLeader(input, cands)
	if w1 != w2 || w1 < 0 {
		t.Fatalf("election not deterministic: %d vs %d", w1, w2)
	}
	// The winner must hold the smallest output.
	for i, c := range cands {
		if c.Output.Compare(cands[w1].Output) < 0 {
			t.Fatalf("candidate %d has smaller output than winner %d", i, w1)
		}
	}
}

func TestElectLeaderSkipsInvalid(t *testing.T) {
	input := []byte("election")
	good := crypto.KeypairFromSeed("good")
	out, proof := Evaluate(good, input)
	// A forged candidate claims output 0x00...0, smaller than everything.
	forged := Candidate{Pub: crypto.KeypairFromSeed("forger").Public, Proof: []byte("junk")}
	cands := []Candidate{forged, {Pub: good.Public, Output: out, Proof: proof}}
	if w := ElectLeader(input, cands); w != 1 {
		t.Fatalf("forged candidate won: %d", w)
	}
}

func TestElectLeaderNoValid(t *testing.T) {
	if w := ElectLeader([]byte("x"), []Candidate{{Proof: []byte("junk")}}); w != -1 {
		t.Fatalf("expected -1, got %d", w)
	}
	if w := ElectLeader([]byte("x"), nil); w != -1 {
		t.Fatalf("expected -1 for empty slate, got %d", w)
	}
}
