// Package vrf implements a verifiable random function in the style of
// Micali, Rabin and Vadhan, which the paper uses (via Omniledger's design)
// to elect the verifiable leader who broadcasts the epoch randomness and
// the unified algorithm parameters (Sec. III-B, IV-C).
//
// Construction: a unique-signature VRF. The proof is an ed25519 signature
// over the domain-separated input; the output is the hash of that signature.
// RFC 8032 ed25519 signing is deterministic, so an honest signer produces
// exactly one output per input, and anyone holding the public key can verify
// the (output, proof) pair.
//
// Substitution note (see DESIGN.md): a malicious signer could in principle
// produce a second valid ed25519 signature for the same message (the nonce
// is not enforced by verification), so this is a simulation-grade VRF, not a
// production one such as ECVRF. It provides the two properties the paper's
// protocol consumes — verifiability and unpredictability to third parties —
// which is what the reproduction needs.
package vrf

import (
	"crypto/ed25519"
	"crypto/sha256"

	"contractshard/internal/crypto"
	"contractshard/internal/types"
)

const sigDomain = "vrf/v1"

// Output is the pseudorandom value a VRF evaluation yields.
type Output = types.Hash

// Evaluate computes the VRF output and proof for input under k.
func Evaluate(k *crypto.Keypair, input []byte) (Output, []byte) {
	proof := crypto.Sign(k, sigDomain, input)
	return outputFromProof(proof), proof
}

// Verify checks that output/proof is a valid evaluation of input under pub.
func Verify(pub ed25519.PublicKey, input []byte, output Output, proof []byte) bool {
	if !crypto.Verify(pub, sigDomain, input, proof) {
		return false
	}
	return outputFromProof(proof) == output
}

func outputFromProof(proof []byte) Output {
	return sha256.Sum256(proof)
}

// Candidate is one participant in a leader election.
type Candidate struct {
	Pub    ed25519.PublicKey
	Output Output
	Proof  []byte
}

// ElectLeader returns the index of the winning candidate: the one with the
// lexicographically smallest valid VRF output over the election input. Every
// miner can rerun this selection locally and reach the same result, which is
// what makes the leader "verifiable" in the paper's sense. Candidates with
// invalid proofs are skipped. It returns -1 when no candidate is valid.
func ElectLeader(input []byte, candidates []Candidate) int {
	best := -1
	for i, c := range candidates {
		if !Verify(c.Pub, input, c.Output, c.Proof) {
			continue
		}
		if best == -1 || c.Output.Compare(candidates[best].Output) < 0 {
			best = i
		}
	}
	return best
}
