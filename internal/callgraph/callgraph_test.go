package callgraph

import (
	"sync"
	"testing"

	"contractshard/internal/types"
)

func a(b byte) types.Address { return types.BytesToAddress([]byte{b}) }

func TestClassifyUnknown(t *testing.T) {
	g := New()
	c := g.Classify(a(1))
	if c.Kind != KindUnknown || c.Shardable() {
		t.Fatalf("fresh sender: %+v", c)
	}
}

func TestClassifySingleContract(t *testing.T) {
	// User A in Fig. 1(a): one contract, no direct transfers.
	g := New()
	g.ObserveContractCall(a(1), a(0xC1))
	g.ObserveContractCall(a(1), a(0xC1)) // repeat invocations don't change it
	c := g.Classify(a(1))
	if c.Kind != KindSingleContract || c.Contract != a(0xC1) {
		t.Fatalf("single-contract sender: %+v", c)
	}
	if !c.Shardable() {
		t.Fatal("single-contract sender must be shardable")
	}
}

func TestClassifyMultiContract(t *testing.T) {
	// User C in Fig. 1(b): two contracts.
	g := New()
	g.ObserveContractCall(a(1), a(0xC1))
	g.ObserveContractCall(a(1), a(0xC2))
	c := g.Classify(a(1))
	if c.Kind != KindMultiContract || c.Shardable() {
		t.Fatalf("multi-contract sender: %+v", c)
	}
}

func TestClassifyDirectDominates(t *testing.T) {
	// User F in Fig. 1(c): contract call plus a direct transfer.
	g := New()
	g.ObserveContractCall(a(1), a(0xC1))
	g.ObserveDirectTransfer(a(1))
	c := g.Classify(a(1))
	if c.Kind != KindDirect || c.Shardable() {
		t.Fatalf("direct sender: %+v", c)
	}
	// Order must not matter.
	g2 := New()
	g2.ObserveDirectTransfer(a(2))
	g2.ObserveContractCall(a(2), a(0xC1))
	if g2.Classify(a(2)).Kind != KindDirect {
		t.Fatal("direct-then-contract misclassified")
	}
}

func TestObserveTx(t *testing.T) {
	g := New()
	tx1 := &types.Transaction{From: a(1), To: a(0xC1), Data: []byte{1}}
	g.ObserveTx(tx1, true)
	tx2 := &types.Transaction{From: a(2), To: a(3)}
	g.ObserveTx(tx2, false)
	if g.Classify(a(1)).Kind != KindSingleContract {
		t.Fatal("contract tx not recorded")
	}
	if g.Classify(a(2)).Kind != KindDirect {
		t.Fatal("direct tx not recorded")
	}
}

func TestContractsSorted(t *testing.T) {
	g := New()
	g.ObserveContractCall(a(1), a(9))
	g.ObserveContractCall(a(1), a(3))
	g.ObserveContractCall(a(1), a(7))
	got := g.Contracts(a(1))
	if len(got) != 3 || got[0] != a(3) || got[1] != a(7) || got[2] != a(9) {
		t.Fatalf("contracts: %v", got)
	}
	if len(g.Contracts(a(99))) != 0 {
		t.Fatal("unknown user should have no contracts")
	}
}

func TestUsers(t *testing.T) {
	g := New()
	g.ObserveContractCall(a(1), a(0xC1))
	g.ObserveDirectTransfer(a(2))
	g.ObserveDirectTransfer(a(1)) // same user in both maps counts once
	if got := g.Users(); got != 2 {
		t.Fatalf("users %d", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	g := New()
	g.ObserveContractCall(a(1), a(0xC1))
	snap := g.Snapshot()
	g.ObserveContractCall(a(1), a(0xC2))
	g.ObserveDirectTransfer(a(3))
	if snap.Classify(a(1)).Kind != KindSingleContract {
		t.Fatal("snapshot saw later writes")
	}
	if snap.Users() != 1 {
		t.Fatal("snapshot users wrong")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindUnknown: "unknown", KindSingleContract: "single-contract",
		KindMultiContract: "multi-contract", KindDirect: "direct",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d: %s", k, k.String())
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	g := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.ObserveContractCall(a(byte(j%10)), a(byte(0xC0+i%3)))
				_ = g.Classify(a(byte(j % 10)))
				if j%10 == 0 {
					_ = g.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	for u := 0; u < 10; u++ {
		if g.Classify(a(byte(u))).Kind != KindMultiContract {
			t.Fatal("expected multi-contract after concurrent writes")
		}
	}
}

// TestSenderCapBoundsTracking: the graph is process-lifetime state fed by
// every observed transaction, so distinct senders are capped. Over-cap
// senders stay KindUnknown (conservative routing); tracked senders keep
// updating, and direct activity still dominates for them.
func TestSenderCapBoundsTracking(t *testing.T) {
	g := NewWithLimit(2)
	g.ObserveContractCall(a(1), a(0xA1))
	g.ObserveDirectTransfer(a(2))

	// A third distinct sender is dropped at the cap.
	g.ObserveContractCall(a(3), a(0xA1))
	if c := g.Classify(a(3)); c.Kind != KindUnknown {
		t.Fatalf("over-cap sender classified %v, want unknown", c.Kind)
	}
	if g.Users() != 2 {
		t.Fatalf("tracked users %d, want 2", g.Users())
	}

	// Already-tracked senders keep accumulating contracts...
	g.ObserveContractCall(a(1), a(0xA2))
	if c := g.Classify(a(1)); c.Kind != KindMultiContract {
		t.Fatalf("tracked sender lost updates: %v", c.Kind)
	}
	// ...and are still reclassified by direct activity, which dominates.
	g.ObserveDirectTransfer(a(1))
	if c := g.Classify(a(1)); c.Kind != KindDirect {
		t.Fatalf("tracked sender not reclassified direct: %v", c.Kind)
	}

	// An untracked sender's direct transfer is dropped at the cap too.
	g.ObserveDirectTransfer(a(4))
	if c := g.Classify(a(4)); c.Kind != KindUnknown {
		t.Fatalf("over-cap direct sender classified %v", c.Kind)
	}
}

// TestSenderCapDefault: the zero-config constructor carries the default cap
// and Snapshot preserves it.
func TestSenderCapDefault(t *testing.T) {
	if g := New(); g.maxSenders != DefaultMaxTrackedSenders {
		t.Fatalf("default cap %d, want %d", g.maxSenders, DefaultMaxTrackedSenders)
	}
	g := NewWithLimit(7)
	g.ObserveContractCall(a(1), a(0xA1))
	if snap := g.Snapshot(); snap.maxSenders != 7 {
		t.Fatalf("snapshot cap %d, want 7", snap.maxSenders)
	}
}
