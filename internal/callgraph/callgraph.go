// Package callgraph maintains the call graph between users and smart
// contracts that miners consult to decide whether a sender belongs to a
// contract shard. The paper observes (Sec. III-C) that instead of querying
// the MaxShard's full history, miners can keep this graph locally: a sender
// who has only ever invoked one contract — and never transacted with a user
// directly — is a single-contract sender whose transactions are validatable
// entirely inside that contract's shard (the data-irrelevancy property of
// Sec. II-C, illustrated by users A, C and F in Fig. 1).
package callgraph

import (
	"sort"
	"sync"

	"contractshard/internal/types"
)

// Kind classifies a sender.
type Kind uint8

// Sender classifications, mirroring Fig. 1's three sender types.
const (
	// KindUnknown: the sender has no recorded activity yet. New senders are
	// routed like single-contract senders of the contract they first invoke.
	KindUnknown Kind = iota
	// KindSingleContract: participates in exactly one contract and has no
	// direct transfers (user A in Fig. 1(a)) — shardable.
	KindSingleContract
	// KindMultiContract: participates in two or more contracts (user C in
	// Fig. 1(b)) — must be handled by the MaxShard.
	KindMultiContract
	// KindDirect: has transacted with a user directly (user F in Fig. 1(c))
	// — must be handled by the MaxShard.
	KindDirect
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSingleContract:
		return "single-contract"
	case KindMultiContract:
		return "multi-contract"
	case KindDirect:
		return "direct"
	default:
		return "unknown"
	}
}

// Classification is the result of classifying a sender.
type Classification struct {
	Kind Kind
	// Contract is the sole contract for KindSingleContract senders.
	Contract types.Address
}

// Shardable reports whether the sender's transactions can be confirmed
// inside a single contract shard.
func (c Classification) Shardable() bool { return c.Kind == KindSingleContract }

// DefaultMaxTrackedSenders caps how many distinct senders a Graph tracks.
// The graph lives for the whole node process and is fed by every observed
// transaction, so without a cap an adversary minting throwaway sender keys
// grows it without bound. Senders observed past the cap simply stay
// KindUnknown, which routes them conservatively (like a first-time sender).
const DefaultMaxTrackedSenders = 1 << 20

// Graph tracks user↔contract participation. It is safe for concurrent use.
type Graph struct {
	mu sync.RWMutex
	// maxSenders bounds len(contracts)+len(direct); see
	// DefaultMaxTrackedSenders.
	maxSenders int
	// contracts[user] is the set of contracts the user has invoked.
	contracts map[types.Address]map[types.Address]struct{}
	// direct[user] marks users who have sent a direct (non-contract) transfer.
	direct map[types.Address]struct{}
}

// New creates an empty graph with the default sender cap.
func New() *Graph {
	return NewWithLimit(DefaultMaxTrackedSenders)
}

// NewWithLimit creates an empty graph tracking at most maxSenders distinct
// senders.
func NewWithLimit(maxSenders int) *Graph {
	return &Graph{
		maxSenders: maxSenders,
		contracts:  make(map[types.Address]map[types.Address]struct{}),
		direct:     make(map[types.Address]struct{}),
	}
}

// atCapacityLocked reports whether the graph already tracks the maximum
// number of distinct senders (callers must hold g.mu).
func (g *Graph) atCapacityLocked() bool {
	return len(g.contracts)+len(g.direct) >= g.maxSenders
}

// ObserveContractCall records that sender invoked the contract. At the
// sender cap, previously-unseen senders are dropped (they classify as
// KindUnknown, the conservative routing).
func (g *Graph) ObserveContractCall(sender, contract types.Address) {
	g.mu.Lock()
	defer g.mu.Unlock()
	set, ok := g.contracts[sender]
	if !ok {
		if g.atCapacityLocked() {
			return
		}
		set = make(map[types.Address]struct{})
		g.contracts[sender] = set
	}
	set[contract] = struct{}{}
}

// ObserveDirectTransfer records that sender transacted with a user directly.
// A sender already tracked via contract calls is always reclassified —
// direct activity dominates and missing it would wrongly shard the sender —
// but previously-unseen senders are dropped at the cap.
func (g *Graph) ObserveDirectTransfer(sender types.Address) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.direct[sender]; !ok && g.atCapacityLocked() {
		if _, tracked := g.contracts[sender]; !tracked {
			return
		}
	}
	g.direct[sender] = struct{}{}
}

// ObserveTx routes a transaction into the graph. isContract tells whether
// tx.To is a contract account; the caller knows this from its state or from
// the contract registry it mines against.
func (g *Graph) ObserveTx(tx *types.Transaction, isContract bool) {
	if isContract {
		g.ObserveContractCall(tx.From, tx.To)
	} else {
		g.ObserveDirectTransfer(tx.From)
	}
}

// Classify returns the sender's classification. Direct activity dominates:
// once a user has transferred directly, no contract shard can validate its
// transactions alone, regardless of contract count.
func (g *Graph) Classify(sender types.Address) Classification {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.direct[sender]; ok {
		return Classification{Kind: KindDirect}
	}
	set := g.contracts[sender]
	switch len(set) {
	case 0:
		return Classification{Kind: KindUnknown}
	case 1:
		//shardlint:ordered single-element set; the loop extracts its only key
		for c := range set {
			return Classification{Kind: KindSingleContract, Contract: c}
		}
		panic("unreachable")
	default:
		return Classification{Kind: KindMultiContract}
	}
}

// Contracts returns the contracts the sender participates in, sorted.
func (g *Graph) Contracts(sender types.Address) []types.Address {
	g.mu.RLock()
	defer g.mu.RUnlock()
	set := g.contracts[sender]
	out := make([]types.Address, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Users returns the number of users with any recorded activity.
func (g *Graph) Users() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[types.Address]struct{}, len(g.contracts)+len(g.direct))
	//shardlint:ordered set union into a map; insertion order cannot affect the result
	for u := range g.contracts {
		seen[u] = struct{}{}
	}
	//shardlint:ordered set union into a map; insertion order cannot affect the result
	for u := range g.direct {
		seen[u] = struct{}{}
	}
	return len(seen)
}

// Snapshot deep-copies the graph, used when handing a consistent view to the
// sharding assignment.
func (g *Graph) Snapshot() *Graph {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := NewWithLimit(g.maxSenders)
	//shardlint:ordered map-to-map deep copy; per-key writes commute
	for u, set := range g.contracts {
		ns := make(map[types.Address]struct{}, len(set))
		//shardlint:ordered map-to-map deep copy; per-key writes commute
		for c := range set {
			ns[c] = struct{}{}
		}
		out.contracts[u] = ns
	}
	//shardlint:ordered map-to-map deep copy; per-key writes commute
	for u := range g.direct {
		out.direct[u] = struct{}{}
	}
	return out
}
