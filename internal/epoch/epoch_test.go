package epoch

import (
	"errors"
	"fmt"
	"testing"

	"contractshard/internal/crypto"
	"contractshard/internal/types"
)

func participants(n int) []Participant {
	out := make([]Participant, n)
	for i := range out {
		out[i] = Participant{
			Key:  crypto.KeypairFromSeed(fmt.Sprintf("epoch-p-%d", i)),
			Seed: []byte(fmt.Sprintf("secret-%d", i)),
		}
	}
	return out
}

func counts() map[types.ShardID]int {
	return map[types.ShardID]int{0: 50, 1: 30, 2: 20}
}

func TestRunAndVerify(t *testing.T) {
	o, err := Run(1, participants(8), counts())
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(o); err != nil {
		t.Fatalf("honest outcome rejected: %v", err)
	}
	if len(o.Assignments) != 8 {
		t.Fatalf("assignments: %d", len(o.Assignments))
	}
	if o.Leader < 0 || o.Leader >= 8 {
		t.Fatalf("leader index %d", o.Leader)
	}
}

func TestNoParticipants(t *testing.T) {
	if _, err := Run(1, nil, counts()); !errors.Is(err, ErrNoParticipants) {
		t.Fatalf("empty epoch: %v", err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	a, err := Run(3, participants(6), counts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(3, participants(6), counts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Randomness != b.Randomness || a.Leader != b.Leader {
		t.Fatal("epoch not deterministic")
	}
	for pub, s := range a.Assignments {
		if b.Assignments[pub] != s {
			t.Fatal("assignments diverged")
		}
	}
}

func TestEpochNumberChangesEverything(t *testing.T) {
	a, _ := Run(1, participants(6), counts())
	b, _ := Run(2, participants(6), counts())
	if a.Randomness == b.Randomness {
		t.Fatal("randomness identical across epochs")
	}
}

func TestAssignmentsRespectFractions(t *testing.T) {
	// With many miners, per-shard counts should track the tx fractions.
	o, err := Run(1, participants(2000), counts())
	if err != nil {
		t.Fatal(err)
	}
	per := o.MinersPerShard()
	byShard := map[types.ShardID]int{}
	total := 0
	for _, e := range per {
		byShard[e.Shard] = e.Miners
		total += e.Miners
	}
	if total != 2000 {
		t.Fatalf("total assigned %d", total)
	}
	frac0 := float64(byShard[0]) / 2000
	if frac0 < 0.44 || frac0 > 0.56 {
		t.Fatalf("MaxShard got %.2f of miners, want ≈0.50", frac0)
	}
	frac2 := float64(byShard[2]) / 2000
	if frac2 < 0.15 || frac2 > 0.25 {
		t.Fatalf("shard 2 got %.2f of miners, want ≈0.20", frac2)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	o, err := Run(1, participants(5), counts())
	if err != nil {
		t.Fatal(err)
	}
	// Claiming another leader.
	tampered := *o
	tampered.Leader = (o.Leader + 1) % 5
	if err := Verify(&tampered); err == nil {
		t.Fatal("leader lie accepted")
	}
	// Moving a miner to a different shard.
	tampered = *o
	tampered.Assignments = map[string]types.ShardID{}
	for k, v := range o.Assignments {
		tampered.Assignments[k] = v
	}
	for k, v := range tampered.Assignments {
		tampered.Assignments[k] = v + 1
		break
	}
	if err := Verify(&tampered); err == nil {
		t.Fatal("assignment lie accepted")
	}
	// Corrupting the transcript.
	tampered = *o
	tampered.Randomness[0] ^= 1
	if err := Verify(&tampered); err == nil {
		t.Fatal("randomness lie accepted")
	}
	if err := Verify(nil); err == nil {
		t.Fatal("nil outcome accepted")
	}
}

func TestShardOf(t *testing.T) {
	ps := participants(4)
	o, err := Run(1, ps, counts())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := o.ShardOf(ps[0].Key.Public); !ok {
		t.Fatal("participant missing")
	}
	outsider := crypto.KeypairFromSeed("outsider")
	if _, ok := o.ShardOf(outsider.Public); ok {
		t.Fatal("outsider has an assignment")
	}
}

func TestWithholdersExcludedAndEpochCompletes(t *testing.T) {
	ps := participants(8)
	ps[2].Withhold = true
	ps[5].Withhold = true
	o, err := Run(4, ps, counts())
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Excluded) != 2 {
		t.Fatalf("excluded %d, want 2", len(o.Excluded))
	}
	if len(o.Assignments) != 6 {
		t.Fatalf("assignments %d, want 6", len(o.Assignments))
	}
	if _, ok := o.ShardOf(ps[2].Key.Public); ok {
		t.Fatal("withholder received an assignment")
	}
	if err := Verify(o); err != nil {
		t.Fatalf("outcome with exclusions failed verification: %v", err)
	}
	// Withholding must actually change the randomness (the restart), and
	// the withholder cannot have predicted the post-exclusion value from
	// the pre-exclusion reveals alone — here we just check it differs.
	honest, err := Run(4, participants(8), counts())
	if err != nil {
		t.Fatal(err)
	}
	if honest.Randomness == o.Randomness {
		t.Fatal("exclusion did not change the beacon output")
	}
}

func TestAllWithholdersFails(t *testing.T) {
	ps := participants(3)
	for i := range ps {
		ps[i].Withhold = true
	}
	if _, err := Run(1, ps, counts()); err == nil {
		t.Fatal("epoch with no honest participants completed")
	}
}
