// Package epoch orchestrates one reconfiguration epoch of the sharding
// system (Sec. III-B): the miners run a commit–reveal randomness round, a
// verifiable leader is elected by VRF over the beacon output, the leader
// collects per-shard transaction counts from the MaxShard and broadcasts the
// fractions, and every miner derives — and can prove — its shard assignment
// from public data alone.
//
// The whole epoch is replayable: Outcome carries everything a third party
// needs to re-verify the leader election and every miner's assignment.
package epoch

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"

	"contractshard/internal/crypto"
	"contractshard/internal/randbeacon"
	"contractshard/internal/sharding"
	"contractshard/internal/types"
	"contractshard/internal/vrf"
)

// Participant is one miner taking part in the epoch.
type Participant struct {
	Key *crypto.Keypair
	// Seed is the secret the miner commits to in the beacon round.
	Seed []byte
	// Withhold simulates a malicious participant that commits but refuses
	// to reveal — the only way to bias a commit-reveal beacon. The epoch
	// excludes such participants and restarts the beacon without them; they
	// receive no shard assignment.
	Withhold bool
}

// Outcome is the verifiable result of an epoch.
type Outcome struct {
	Epoch      uint64
	Randomness types.Hash
	Transcript *randbeacon.Transcript
	// Leader indexes the honest participants (Candidates); its VRF
	// credentials are attached so anyone can re-run the election.
	Leader      int
	Candidates  []vrf.Candidate
	Fractions   []sharding.Fraction
	Assignments map[string]types.ShardID // keyed by public key bytes
	// Excluded lists the public keys of withholders dropped from the epoch.
	Excluded []ed25519.PublicKey
}

// Errors.
var (
	ErrNoParticipants = errors.New("epoch: no participants")
	ErrNoLeader       = errors.New("epoch: leader election failed")
)

// Run executes one epoch among the participants, assigning each miner a
// shard weighted by the per-shard transaction counts.
func Run(epochNum uint64, participants []Participant, txCounts map[types.ShardID]int) (*Outcome, error) {
	if len(participants) == 0 {
		return nil, ErrNoParticipants
	}

	// 1. Randomness beacon: every participant commits; withholders refuse
	// to reveal and are publicly identified, then the round restarts
	// without them (the commit-reveal fallback). Their bias attempt only
	// costs them their own participation.
	session := randbeacon.NewSession(epochNum, pubsOf(participants))
	for _, p := range participants {
		c := randbeacon.Commitment(epochNum, p.Key.Public, p.Seed)
		if err := session.AddCommit(p.Key.Public, c); err != nil {
			return nil, fmt.Errorf("epoch: commit: %w", err)
		}
	}
	for _, p := range participants {
		if p.Withhold {
			continue
		}
		if err := session.AddReveal(p.Key.Public, p.Seed); err != nil {
			return nil, fmt.Errorf("epoch: reveal: %w", err)
		}
	}
	var excluded []ed25519.PublicKey
	if w := session.Withholders(); len(w) > 0 {
		excluded = w
		honest := participants[:0:0]
		drop := make(map[string]bool, len(w))
		for _, pub := range w {
			drop[string(pub)] = true
		}
		for _, p := range participants {
			if !drop[string(p.Key.Public)] {
				honest = append(honest, p)
			}
		}
		participants = honest
		if len(participants) == 0 {
			return nil, ErrNoParticipants
		}
		session = randbeacon.NewSession(epochNum, pubsOf(participants))
		for _, p := range participants {
			c := randbeacon.Commitment(epochNum, p.Key.Public, p.Seed)
			if err := session.AddCommit(p.Key.Public, c); err != nil {
				return nil, fmt.Errorf("epoch: recommit: %w", err)
			}
		}
		for _, p := range participants {
			if err := session.AddReveal(p.Key.Public, p.Seed); err != nil {
				return nil, fmt.Errorf("epoch: re-reveal: %w", err)
			}
		}
	}
	transcript, err := session.Transcript()
	if err != nil {
		return nil, fmt.Errorf("epoch: beacon: %w", err)
	}

	// 2. VRF leader election over the beacon output (Sec. III-B).
	input := electionInput(epochNum, transcript.Value)
	candidates := make([]vrf.Candidate, len(participants))
	for i, p := range participants {
		out, proof := vrf.Evaluate(p.Key, input)
		candidates[i] = vrf.Candidate{Pub: p.Key.Public, Output: out, Proof: proof}
	}
	leader := vrf.ElectLeader(input, candidates)
	if leader < 0 {
		return nil, ErrNoLeader
	}

	// 3. The leader broadcasts the per-shard transaction fractions.
	fractions := sharding.ComputeFractions(txCounts)

	// 4. Every miner derives its shard from public data.
	assignments := make(map[string]types.ShardID, len(participants))
	for _, p := range participants {
		shard, err := sharding.AssignMiner(transcript.Value, p.Key.Public, fractions)
		if err != nil {
			return nil, fmt.Errorf("epoch: assign: %w", err)
		}
		assignments[string(p.Key.Public)] = shard
	}

	return &Outcome{
		Epoch:       epochNum,
		Randomness:  transcript.Value,
		Transcript:  transcript,
		Leader:      leader,
		Candidates:  candidates,
		Fractions:   fractions,
		Assignments: assignments,
		Excluded:    excluded,
	}, nil
}

func pubsOf(participants []Participant) []ed25519.PublicKey {
	pubs := make([]ed25519.PublicKey, len(participants))
	for i, p := range participants {
		pubs[i] = p.Key.Public
	}
	return pubs
}

func electionInput(epochNum uint64, randomness types.Hash) []byte {
	e := types.NewEncoder()
	e.WriteBytes([]byte("epoch/election/v1"))
	e.WriteUint64(epochNum)
	e.WriteHash(randomness)
	return e.Bytes()
}

// Verify re-checks an epoch outcome from scratch: the beacon transcript, the
// leader election and every assignment — the audit any non-participating
// miner runs before trusting the new configuration.
func Verify(o *Outcome) error {
	if o == nil {
		return errors.New("epoch: nil outcome")
	}
	if !randbeacon.VerifyTranscript(o.Transcript) {
		return errors.New("epoch: beacon transcript invalid")
	}
	if o.Transcript.Value != o.Randomness {
		return errors.New("epoch: randomness does not match transcript")
	}
	input := electionInput(o.Epoch, o.Randomness)
	if got := vrf.ElectLeader(input, o.Candidates); got != o.Leader {
		return fmt.Errorf("epoch: leader election replays to %d, outcome claims %d", got, o.Leader)
	}
	sum := 0
	for _, f := range o.Fractions {
		sum += f.Percent
	}
	if sum != 100 {
		return fmt.Errorf("epoch: fractions sum to %d", sum)
	}
	for pub, claimed := range o.Assignments {
		shard, err := sharding.AssignMiner(o.Randomness, ed25519.PublicKey(pub), o.Fractions)
		if err != nil {
			return err
		}
		if shard != claimed {
			return fmt.Errorf("epoch: assignment for %x replays to %s, outcome claims %s",
				pub[:4], shard, claimed)
		}
	}
	return nil
}

// ShardOf returns the outcome's assignment for a miner.
func (o *Outcome) ShardOf(pub ed25519.PublicKey) (types.ShardID, bool) {
	s, ok := o.Assignments[string(pub)]
	return s, ok
}

// MinersPerShard tallies assignments by shard, sorted by shard id — useful
// for checking the β-weighted balance.
func (o *Outcome) MinersPerShard() []struct {
	Shard  types.ShardID
	Miners int
} {
	counts := map[types.ShardID]int{}
	for _, s := range o.Assignments {
		counts[s]++
	}
	ids := make([]types.ShardID, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]struct {
		Shard  types.ShardID
		Miners int
	}, len(ids))
	for i, id := range ids {
		out[i].Shard = id
		out[i].Miners = counts[id]
	}
	return out
}
