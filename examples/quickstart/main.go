// Quickstart: build a contract-sharded blockchain in-process, watch the
// router send each sender class to its shard, and mine every shard in
// parallel without any cross-shard communication.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	contractshard "contractshard"
	"contractshard/internal/types"
)

func main() {
	// Three users with funded accounts.
	alice := contractshard.KeypairFromSeed("alice") // will use one contract only
	carol := contractshard.KeypairFromSeed("carol") // will use two contracts
	frank := contractshard.KeypairFromSeed("frank") // will also transfer directly

	sys, err := contractshard.NewSystem(contractshard.SystemConfig{
		GenesisAlloc: map[contractshard.Address]uint64{
			alice.Address(): 1_000_000,
			carol.Address(): 1_000_000,
			frank.Address(): 1_000_000,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Register two contracts; each forms its own shard (Sec. III-A).
	dest := types.BytesToAddress([]byte{0xDD})
	shop := types.BytesToAddress([]byte{0xC1})
	game := types.BytesToAddress([]byte{0xC2})
	shopShard, err := sys.RegisterContract(shop, contractshard.UnconditionalTransfer(dest))
	if err != nil {
		log.Fatal(err)
	}
	gameShard, err := sys.RegisterContract(game, contractshard.ConditionalTransfer(dest, 500))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shop contract -> %s, game contract -> %s\n\n", shopShard, gameShard)

	submit := func(who string, k *contractshard.Keypair, to contractshard.Address, value uint64, data []byte) {
		shard, tx, err := sys.SubmitCall(k, to, value, 2, data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s -> %-10s (nonce %d, value %d)\n", who, shard, tx.Nonce, tx.Value)
	}

	// Alice only ever touches the shop: a single-contract sender whose
	// transactions confirm entirely inside the shop shard (Fig. 1(a)).
	for i := 0; i < 3; i++ {
		submit("alice", alice, shop, 100, []byte{1})
	}
	// Carol uses both contracts: after her second contract she becomes a
	// multi-contract sender and moves to the MaxShard (Fig. 1(b)).
	submit("carol", carol, shop, 50, []byte{1})
	submit("carol", carol, game, 50, []byte{1})
	// Frank transfers to Carol directly: a direct sender, MaxShard forever
	// (Fig. 1(c)).
	if shard, _, err := sys.SubmitTransfer(frank, carol.Address(), 25, 2); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("%-6s -> %-10s (direct transfer)\n", "frank", shard)
	}

	// Mine every shard until all pools drain. Shards progress independently
	// — the paper's zero cross-shard communication during validation.
	miner := types.BytesToAddress([]byte{0xA1})
	blocks, err := sys.MineUntilDrained(miner, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmined %d blocks across %d shards\n\n", blocks, sys.NumShards())

	for _, id := range sys.ShardIDs() {
		h, _ := sys.Height(id)
		bal, _ := sys.BalanceIn(id, dest)
		fmt.Printf("%-10s height=%d  dest received %d\n", id, h, bal)
	}
	fmt.Println("\nsender classes after the workload:")
	for _, u := range []struct {
		name string
		k    *contractshard.Keypair
	}{{"alice", alice}, {"carol", carol}, {"frank", frank}} {
		fmt.Printf("  %-6s %s\n", u.name, sys.SenderClass(u.k.Address()))
	}
}
