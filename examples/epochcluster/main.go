// Epochcluster: the full Sec. III-B/III-C pipeline end to end — miners run
// a commit-reveal randomness round, elect a VRF leader, derive their shard
// assignments from the broadcast transaction fractions, then mine as a
// gossiping cluster where every block carries a verifiable membership proof
// and a forged shard claim is rejected by every honest peer.
//
//	go run ./examples/epochcluster
package main

import (
	"fmt"
	"log"

	"contractshard/internal/chain"
	"contractshard/internal/contract"
	"contractshard/internal/crypto"
	"contractshard/internal/epoch"
	"contractshard/internal/node"
	"contractshard/internal/p2p"
	"contractshard/internal/sharding"
	"contractshard/internal/types"
)

func main() {
	// 1. Fifteen miners run the epoch: beacon, leader election, weighted
	// assignment. Shard 1 handles 60% of the traffic, the MaxShard 40%.
	parts := make([]epoch.Participant, 15)
	for i := range parts {
		parts[i] = epoch.Participant{
			Key:  crypto.KeypairFromSeed(fmt.Sprintf("ec-miner-%d", i)),
			Seed: []byte{byte(i), 0x42},
		}
	}
	out, err := epoch.Run(9, parts, map[types.ShardID]int{0: 40, 1: 60})
	if err != nil {
		log.Fatal(err)
	}
	if err := epoch.Verify(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch 9: leader = miner %d, randomness = %s…\n", out.Leader, out.Randomness.Hex()[:18])
	for _, e := range out.MinersPerShard() {
		fmt.Printf("  %-10s %d miners\n", e.Shard, e.Miners)
	}

	// 2. Build the cluster: one contract forms shard 1.
	dir := sharding.NewDirectory()
	caddr := types.BytesToAddress([]byte{0xC1})
	dest := types.BytesToAddress([]byte{0xDD})
	dir.Register(caddr)

	user := crypto.KeypairFromSeed("ec-user")
	alloc := map[types.Address]uint64{user.Address(): 1_000_000}
	code := map[types.Address][]byte{caddr: contract.UnconditionalTransfer(dest)}

	net := p2p.NewNetwork()
	var miners []*node.Miner
	for i, p := range parts {
		shard, _ := out.ShardOf(p.Key.Public)
		cc := chain.DefaultConfig(shard)
		cc.Difficulty = 16
		m, err := node.New(net, p2p.NodeID(fmt.Sprintf("miner-%d", i)), node.Config{
			Key: p.Key, Shard: shard,
			Randomness: out.Randomness, Fractions: out.Fractions,
			ChainConfig: cc, GenesisAlloc: alloc, Contracts: code,
			Directory: dir,
		})
		if err != nil {
			log.Fatal(err)
		}
		miners = append(miners, m)
	}

	// 3. The user gossips contract calls; only shard-1 miners pool them.
	var producer *node.Miner
	for _, m := range miners {
		if m.Shard() == 1 {
			producer = m
			break
		}
	}
	for nonce := uint64(0); nonce < 5; nonce++ {
		tx := &types.Transaction{
			Nonce: nonce, From: user.Address(), To: caddr,
			Value: 100, Fee: 2, Data: []byte{1},
		}
		if err := crypto.SignTx(tx, user); err != nil {
			log.Fatal(err)
		}
		if err := miners[0].SubmitTx(tx); err != nil {
			log.Fatal(err)
		}
	}
	block, err := producer.Mine()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshard-1 miner sealed block #%d with %d txs (proof: its public key)\n",
		block.Number(), len(block.Txs))
	accepted, ignored := 0, 0
	for _, m := range miners {
		if m.Shard() == 1 && m.Height() == 1 {
			accepted++
		}
		if m.Shard() != 1 {
			ignored++
		}
	}
	fmt.Printf("recorded by %d shard-1 miners; ignored by %d MaxShard miners\n", accepted, ignored)

	// 4. A MaxShard miner forges a shard-1 block; honest peers reject it.
	var cheater *node.Miner
	for _, m := range miners {
		if m.Shard() == 0 {
			cheater = m
			break
		}
	}
	rejectedBefore := producer.Stats().BlocksRejected
	forgeCfg := chain.DefaultConfig(1)
	forgeCfg.Difficulty = 16
	forgeChain, err := chain.NewWithContracts(forgeCfg, alloc, code)
	if err != nil {
		log.Fatal(err)
	}
	forged, _, err := forgeChain.BuildBlockWithProof(cheater.Address(), nil, nil, 1000)
	if err != nil {
		log.Fatal(err)
	}
	// The forged block travels the same gossip topic as honest blocks.
	cheaterBroadcast(net, forged.Encode())
	if producer.Stats().BlocksRejected > rejectedBefore {
		fmt.Printf("\nforged shard-1 block from a MaxShard miner: rejected by honest peers ✓\n")
	} else {
		log.Fatal("forged block was not rejected")
	}
}

// cheaterBroadcast joins a throwaway node to gossip the forged block.
func cheaterBroadcast(net *p2p.Network, raw []byte) {
	n := net.MustJoin("cheater-gossip")
	n.Broadcast(node.TopicBlocks, raw)
}
