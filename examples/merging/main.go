// Merging: walk through the inter-shard merging pipeline of Sec. IV-A/IV-C —
// shard representatives report sizes to a VRF-elected leader, the leader
// broadcasts unified parameters (two messages per shard in total), every
// miner replays Algorithm 1 locally to the same plan, and a forged plan is
// caught by the replay verification.
//
//	go run ./examples/merging
package main

import (
	"fmt"
	"log"

	contractshard "contractshard"
	"contractshard/internal/crypto"
	"contractshard/internal/p2p"
	"contractshard/internal/types"
	"contractshard/internal/unify"
	"contractshard/internal/vrf"
)

func main() {
	// 1. Elect the verifiable leader among candidate miners (Sec. III-B).
	input := []byte("epoch-7")
	var candidates []vrf.Candidate
	keys := make([]*crypto.Keypair, 5)
	for i := range keys {
		keys[i] = crypto.KeypairFromSeed(fmt.Sprintf("leader-cand-%d", i))
		out, proof := vrf.Evaluate(keys[i], input)
		candidates = append(candidates, vrf.Candidate{Pub: keys[i].Public, Output: out, Proof: proof})
	}
	winner := vrf.ElectLeader(input, candidates)
	fmt.Printf("VRF leader: candidate %d (verifiable by every miner)\n\n", winner)

	// 2. Shard representatives report sizes; the leader broadcasts unified
	// parameters. Count the messages: exactly two per shard (Fig. 4(c)).
	net := p2p.NewNetwork()
	leaderNode := net.MustJoin("leader")
	leader := unify.NewLeader(leaderNode)
	sizes := []int{4, 7, 3, 6, 5} // five small shards' pending transactions
	reps := make([]*unify.Rep, len(sizes))
	for i, size := range sizes {
		node := net.MustJoin(p2p.NodeID(fmt.Sprintf("rep-%d", i+1)))
		node.SetShard(types.ShardID(i + 1))
		reps[i] = unify.NewRep(node, types.ShardID(i+1))
		if err := reps[i].Report("leader", size); err != nil {
			log.Fatal(err)
		}
	}
	params, _ := leader.BroadcastParams(unify.Params{
		Epoch: 7, L: 10, Reward: 20, CostPerShard: 1, MergeSeed: 42,
	})
	stats := net.Stats()
	fmt.Printf("unification round: %d messages over %d shards = %.0f per shard\n\n",
		stats.Total, len(sizes), float64(stats.Total)/float64(len(sizes)))

	// 3. Every miner replays Algorithm 1 locally from the unified inputs and
	// obtains the identical plan — no gameplay communication at all.
	plan, err := params.RunMerge()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("merge plan (identical on every miner):")
	for i, ns := range plan.NewShards {
		fmt.Printf("  new shard %d: members %v, %d transactions (L=%d)\n",
			i+1, ns.Members, ns.Size, params.L)
	}
	for _, left := range plan.Remaining {
		fmt.Printf("  unmerged: %s with %d transactions\n", left.ID, left.Size)
	}

	// Each representative verifies its received parameters match by digest.
	d := params.Digest()
	for i, r := range reps {
		if got := r.Params(); got == nil || got.Digest() != d {
			log.Fatalf("rep %d received divergent parameters", i)
		}
	}
	fmt.Println("\nall representatives hold identical parameters (digest check passed)")

	// 4. A malicious miner claims a different merge to capture a shard; the
	// local replay exposes it and its blocks are rejected (Sec. IV-C).
	forged := *plan
	forged.NewShards = append([]contractshard.MergedShard(nil), plan.NewShards...)
	if len(forged.NewShards) > 0 {
		forged.NewShards[0].Members = append([]types.ShardID{99}, forged.NewShards[0].Members[1:]...)
	}
	if err := contractshard.VerifyMergePlan(&params, &forged); err != nil {
		fmt.Printf("\nforged plan rejected: %v\n", err)
	} else {
		log.Fatal("forged plan was not detected")
	}
}
