// Txselection: run the intra-shard congestion game of Sec. IV-B on a busy
// shard. Miners best-reply over U = f/(n+1) until the pure Nash equilibrium,
// sets expand to block size, and a block packing transactions outside its
// producer's assignment is rejected by local replay.
//
//	go run ./examples/txselection
package main

import (
	"fmt"
	"log"
	"math/rand"

	contractshard "contractshard"
)

func main() {
	// A busy shard: 24 pending transactions with mixed fees, 4 miners.
	rng := rand.New(rand.NewSource(7))
	fees := make([]uint64, 24)
	for i := range fees {
		fees[i] = uint64(rng.Intn(90) + 10)
	}
	fmt.Println("pending fees:", fees)

	params := contractshard.SelectionParams{
		Fees:    fees,
		Miners:  4,
		SetSize: 6, // each miner's block holds up to 6 transactions
	}
	sets, err := contractshard.SelectTransactionSets(params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfirst-round equilibrium: %v (%d distinct choices — parallel streams)\n",
		sets.FirstRound, sets.DistinctFirstRound)
	fmt.Printf("best-reply moves: %d over %d rounds\n\n", sets.Moves, sets.Rounds)
	for m, set := range sets.PerMiner {
		total := uint64(0)
		for _, tx := range set {
			total += fees[tx]
		}
		fmt.Printf("miner %d set: %v (fees total %d)\n", m, set, total)
	}

	// Without the game, all four miners would pack the same top-6 block —
	// one stream. With it, the pool splits into (mostly) disjoint streams.
	overlap := map[int]int{}
	for _, set := range sets.PerMiner {
		for _, tx := range set {
			overlap[tx]++
		}
	}
	shared := 0
	for _, n := range overlap {
		if n > 1 {
			shared++
		}
	}
	fmt.Printf("\ntransactions claimed by more than one miner: %d of %d\n", shared, len(overlap))

	// Honest block: a subset of the miner's own assignment.
	if err := contractshard.VerifySelectedBlock(sets, 1, sets.PerMiner[1][:3]); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhonest block verified against the unified assignment")

	// Rule-breaker: miner 1 packs a transaction assigned elsewhere.
	var stolen int = -1
	own := map[int]bool{}
	for _, tx := range sets.PerMiner[1] {
		own[tx] = true
	}
	for tx := range fees {
		if !own[tx] {
			stolen = tx
			break
		}
	}
	if stolen >= 0 {
		if err := contractshard.VerifySelectedBlock(sets, 1, []int{stolen}); err != nil {
			fmt.Printf("rule-breaking block rejected: %v\n", err)
		} else {
			log.Fatal("rule-breaking block was not detected")
		}
	}
}
