// Commcost: reproduce the Fig. 4(b) communication comparison in miniature —
// inject multi-input transactions into the contract-centric design and into
// a ChainSpace-style random sharding, and count the cross-shard messages
// each needs to validate them.
//
//	go run ./examples/commcost
package main

import (
	"fmt"
	"log"
	"math/rand"

	"contractshard/internal/baseline/chainspace"
	"contractshard/internal/callgraph"
	"contractshard/internal/sharding"
	"contractshard/internal/types"
	"contractshard/internal/workload"
)

func main() {
	const shards = 9
	rng := rand.New(rand.NewSource(11))

	fmt.Println("3-input transactions    ours (msgs/shard)    ChainSpace (msgs/shard)")
	for _, n := range []int{0, 1000, 2000, 4000, 8000} {
		txs := workload.MultiInputTxs(rng, n, 3, 100)

		// ChainSpace: random placement, S-BAC cross-shard commit.
		cs, err := chainspace.SimulateComm(chainspace.Config{Shards: shards, Seed: 3}, txs)
		if err != nil {
			log.Fatal(err)
		}

		// Ours: route the same senders through the contract-centric router.
		// A multi-input transfer marks its sender "direct", so every one of
		// them lands in the MaxShard, whose miners hold all the state the
		// validation reads — zero cross-shard messages.
		graph := callgraph.New()
		dir := sharding.NewDirectory()
		dir.Register(types.BytesToAddress([]byte{0xC1}))
		crossShard := 0
		for i := range txs {
			tx := &types.Transaction{
				From: types.BytesToAddress([]byte{0x50, byte(i >> 8), byte(i)}),
				To:   types.BytesToAddress([]byte{0x60, byte(i)}),
			}
			graph.ObserveTx(tx, false)
			if shard := sharding.RouteTx(tx, graph, dir); shard != types.MaxShard {
				crossShard += 2
			}
		}
		fmt.Printf("%-23d %-20d %.1f\n", n, crossShard, cs.PerShardMean)
	}
	fmt.Println("\nours stays at zero; ChainSpace grows linearly with the transaction count.")
}
