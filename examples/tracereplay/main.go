// Tracereplay: load a transaction trace (CSV, or a bundled sample), analyze
// its sender classes through the paper's Fig. 1 lens, and replay it through
// the contract-centric router to see where every transaction would confirm.
//
//	go run ./examples/tracereplay                  # bundled sample
//	go run ./examples/tracereplay -csv dump.csv    # your own trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"contractshard/internal/callgraph"
	"contractshard/internal/sharding"
	"contractshard/internal/types"
	"contractshard/internal/workload"
)

// sample is a miniature dump in the loader's format:
// sender,to,is_contract,fee. Senders 01/02 stick to one contract each,
// 03 spans two, 04 also pays a user directly — the three Fig. 1 classes.
const sample = `sender,to,is_contract,fee
0x01,0xc1,1,12
0x01,0xc1,1,9
0x02,0xc2,1,15
0x02,0xc2,1,11
0x03,0xc1,1,8
0x03,0xc2,1,7
0x04,0xc1,1,10
0x04,0x99,0,5
0x01,0xc1,1,14
0x02,0xc2,1,6
`

func main() {
	csvPath := flag.String("csv", "", "CSV trace path (empty = bundled sample)")
	flag.Parse()

	var events []workload.TraceEvent
	var err error
	if *csvPath != "" {
		f, ferr := os.Open(*csvPath)
		if ferr != nil {
			log.Fatal(ferr)
		}
		defer f.Close() //shardlint:errdrop read-only file; a close error cannot lose data
		events, err = workload.LoadCSVTrace(f)
	} else {
		events, err = workload.LoadCSVTrace(strings.NewReader(sample))
	}
	if err != nil {
		log.Fatal(err)
	}

	stats := workload.AnalyzeTrace(events)
	fmt.Printf("trace: %d txs from %d senders — %d single-contract, %d multi-contract, %d direct\n",
		stats.Events, stats.Senders, stats.SingleContract, stats.MultiContract, stats.DirectSenders)
	fmt.Printf("shardable fraction: %.2f\n\n", stats.ShardableFraction())

	// Replay through the router: contracts register shards lazily on first
	// sight, the call graph learns each sender as transactions stream in.
	dir := sharding.NewDirectory()
	graph := callgraph.New()
	perShard := map[types.ShardID]int{}
	for _, ev := range events {
		tx := &types.Transaction{From: ev.Sender, Fee: ev.Fee}
		if ev.Direct {
			tx.To = ev.To
		} else {
			tx.To = ev.Contract
			tx.Data = []byte{1}
			dir.Register(ev.Contract) // idempotent
		}
		shard := sharding.RouteTx(tx, graph, dir)
		graph.ObserveTx(tx, !ev.Direct)
		perShard[shard]++
	}

	fmt.Println("routing outcome:")
	for _, id := range dir.ShardIDs() {
		fmt.Printf("  %-10s %d txs\n", id, perShard[id])
	}
	maxShardLoad := float64(perShard[types.MaxShard]) / float64(stats.Events)
	fmt.Printf("\nMaxShard carries %.0f%% of the traffic; the rest confirms in parallel shards.\n",
		maxShardLoad*100)
}
