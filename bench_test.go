package contractshard

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Sec. VI). Each iteration regenerates the experiment at
// reduced (Quick) scale — the full-scale runs live behind `cmd/shardbench`
// and EXPERIMENTS.md records their headline numbers against the paper's.
// The reported headline is attached to each benchmark via b.ReportMetric so
// `go test -bench` output doubles as a miniature reproduction table.
//
// A second group benchmarks the substrate hot paths (VM execution, block
// building, Merkle tries, the two game engines) so regressions in the
// underlying systems are visible independently of the experiment wrappers.

import (
	"fmt"
	"math/rand"
	"testing"

	"contractshard/internal/chain"
	"contractshard/internal/contract"
	"contractshard/internal/crypto"
	"contractshard/internal/experiments"
	"contractshard/internal/game/congestion"
	"contractshard/internal/game/replicator"
	"contractshard/internal/merge"
	"contractshard/internal/sim"
	"contractshard/internal/state"
	"contractshard/internal/trie"
	"contractshard/internal/types"
)

// benchExperiment runs one registered experiment per iteration and reports
// the named summary metric.
func benchExperiment(b *testing.B, id, metric, unit string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Options{Seed: int64(i + 1), Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			if v, ok := res.Summary[metric]; ok {
				b.ReportMetric(v, unit)
			}
		}
	}
}

// --- One benchmark per table/figure -----------------------------------------

// BenchmarkTableI_ConfirmationTime regenerates Table I: confirmation time of
// 20 transactions saturating beyond four miners.
func BenchmarkTableI_ConfirmationTime(b *testing.B) {
	benchExperiment(b, "table1", "time_7", "sec@7miners")
}

// BenchmarkFig1d_ShardSafety regenerates Fig 1(d): the shard-safety curve.
func BenchmarkFig1d_ShardSafety(b *testing.B) {
	benchExperiment(b, "fig1d", "safety_30_at_33pct", "safety@30")
}

// BenchmarkFig3a_ShardingThroughput regenerates Fig 3(a): near-linear
// throughput improvement, ≈7x at nine shards (paper: 7.2x).
func BenchmarkFig3a_ShardingThroughput(b *testing.B) {
	benchExperiment(b, "fig3a", "improvement_9", "x@9shards")
}

// BenchmarkFig3b_EmptyBlocksBalanced regenerates Fig 3(b): evenly loaded
// shards mine almost no empty blocks.
func BenchmarkFig3b_EmptyBlocksBalanced(b *testing.B) {
	benchExperiment(b, "fig3b", "max_sharding_empty", "empty-blocks")
}

// BenchmarkFig3c_MergingEmptyBlocks regenerates Fig 3(c): the merge removes
// most small-shard empty blocks (paper: 90%).
func BenchmarkFig3c_MergingEmptyBlocks(b *testing.B) {
	benchExperiment(b, "fig3c", "reduction", "fraction")
}

// BenchmarkFig3d_MergingThroughput regenerates Fig 3(d): the merge costs a
// modest throughput loss (paper: 14%).
func BenchmarkFig3d_MergingThroughput(b *testing.B) {
	benchExperiment(b, "fig3d", "loss", "fraction")
}

// BenchmarkFig3e_MergingVsRandom regenerates Fig 3(e): game-driven merging
// beats the 0.5-coin baseline on throughput (paper: +11%).
func BenchmarkFig3e_MergingVsRandom(b *testing.B) {
	benchExperiment(b, "fig3e", "gain", "fraction")
}

// BenchmarkFig3f_EmptyVsRandom regenerates Fig 3(f): empty blocks under both
// mergers stay comparable (paper: ours 4% fewer).
func BenchmarkFig3f_EmptyVsRandom(b *testing.B) {
	benchExperiment(b, "fig3f", "ours_avg", "empty/shard")
}

// BenchmarkFig3g_NewShards regenerates Fig 3(g): the game forms more new
// shards than random merging (paper: +59%).
func BenchmarkFig3g_NewShards(b *testing.B) {
	benchExperiment(b, "fig3g", "gain", "fraction")
}

// BenchmarkFig3h_TxSelection regenerates Fig 3(h): selection improvement
// grows with miner count (paper: 300% average).
func BenchmarkFig3h_TxSelection(b *testing.B) {
	benchExperiment(b, "fig3h", "improvement_avg", "x")
}

// BenchmarkFig4a_VsChainSpace regenerates Fig 4(a): both systems scale
// near-linearly; ours is not worse.
func BenchmarkFig4a_VsChainSpace(b *testing.B) {
	benchExperiment(b, "fig4a", "ours_9", "x@9shards")
}

// BenchmarkFig4b_CommVsTxs regenerates Fig 4(b): validation communication is
// zero for ours and linear for ChainSpace.
func BenchmarkFig4b_CommVsTxs(b *testing.B) {
	benchExperiment(b, "fig4b", "chainspace_max", "msgs/shard")
}

// BenchmarkFig4c_CommVsSmallShards regenerates Fig 4(c): the merge protocol
// costs a constant two messages per shard.
func BenchmarkFig4c_CommVsSmallShards(b *testing.B) {
	benchExperiment(b, "fig4c", "comm_6", "msgs/shard")
}

// BenchmarkFig5a_LargeScaleMerging regenerates Fig 5(a): merging lands near
// the optimal shard count at scale (paper: 80%).
func BenchmarkFig5a_LargeScaleMerging(b *testing.B) {
	benchExperiment(b, "fig5a", "fraction_of_optimal", "fraction")
}

// BenchmarkFig5b_LargeScaleSelection regenerates Fig 5(b): selection covers
// about half the optimal distinct-set count (paper: ≈50%).
func BenchmarkFig5b_LargeScaleSelection(b *testing.B) {
	benchExperiment(b, "fig5b", "fraction_of_optimal", "fraction")
}

// BenchmarkSecurity_InterShard regenerates the Eq. (3) headline: 8e-6
// corruption probability under a 25% adversary.
func BenchmarkSecurity_InterShard(b *testing.B) {
	benchExperiment(b, "sec-inter", "corruption_at_implied_n", "prob")
}

// BenchmarkSecurity_IntraShard regenerates the Eq. (6) headline: 7e-7
// corruption probability under a 25% adversary and 200 fees.
func BenchmarkSecurity_IntraShard(b *testing.B) {
	benchExperiment(b, "sec-intra", "corruption_at_implied_v", "prob")
}

// BenchmarkAblation_ConflictWindow sweeps the simulator's duplicate-block
// conflict window, the main timing calibration constant.
func BenchmarkAblation_ConflictWindow(b *testing.B) {
	benchExperiment(b, "abl-conflict", "improvement_w1.2", "x@calibrated")
}

// BenchmarkAblation_SelectionEpoch sweeps the parameter-unification refresh
// cadence of the selection game.
func BenchmarkAblation_SelectionEpoch(b *testing.B) {
	benchExperiment(b, "abl-epoch", "improvement_e1.5", "x@default")
}

// BenchmarkAblation_MergeBound sweeps the merge bound L.
func BenchmarkAblation_MergeBound(b *testing.B) {
	benchExperiment(b, "abl-bound", "new_shards_L6", "shards")
}

// BenchmarkPrototypeSubstrate runs the sharding speedup on the real chain
// substrate (signed txs, routing, VM, PoW) instead of the simulator.
func BenchmarkPrototypeSubstrate(b *testing.B) {
	benchExperiment(b, "proto", "speedup_8", "x@8shards")
}

// BenchmarkStorageFootprint measures per-miner state reduction.
func BenchmarkStorageFootprint(b *testing.B) {
	benchExperiment(b, "storage", "reduction", "fraction")
}

// BenchmarkSteadyStateLatency measures sustained-arrival confirmation
// latency across shard counts (extension experiment).
func BenchmarkSteadyStateLatency(b *testing.B) {
	benchExperiment(b, "ext-steady", "mean_latency_9", "sec@9shards")
}

// BenchmarkTraceShardability measures the shardable fraction of trace-like
// workloads (extension experiment).
func BenchmarkTraceShardability(b *testing.B) {
	benchExperiment(b, "ext-trace", "shardable_d0", "fraction")
}

// BenchmarkFullSystemComposition measures merging + selection composed on a
// skewed workload (extension experiment).
func BenchmarkFullSystemComposition(b *testing.B) {
	benchExperiment(b, "ext-full", "gain", "fraction")
}

// BenchmarkXShardReceiptsComm measures cross-shard messages per transfer
// under the receipts method, end-to-end on real chains — below MaxShard
// routing's 1 + K/blocksize and far below S-BAC's 3·(m−1) (extension
// experiment).
func BenchmarkXShardReceiptsComm(b *testing.B) {
	benchExperiment(b, "ext-xshard", "receipts_msgs_per_tx", "msgs/transfer")
}

// BenchmarkXShardReceiptsThroughput measures the confirmed-transfer
// throughput gain of receipts over serializing every cross-shard transfer
// through the MaxShard (extension experiment).
func BenchmarkXShardReceiptsThroughput(b *testing.B) {
	benchExperiment(b, "ext-xshard", "tput_gain", "x-vs-maxshard")
}

// --- Substrate micro-benchmarks ----------------------------------------------

func BenchmarkVMUnconditionalTransfer(b *testing.B) {
	st := state.New()
	caddr := types.BytesToAddress([]byte{0xC1})
	dest := types.BytesToAddress([]byte{0xDD})
	code := contract.UnconditionalTransfer(dest)
	if err := st.AddBalance(caddr, uint64(b.N)+1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := contract.Execute(&contract.Context{
			State: st, Contract: caddr, Value: 1, Gas: 1000,
		}, code); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockBuildAndValidate(b *testing.B) {
	alice := crypto.KeypairFromSeed("bench-alice")
	cfg := chain.DefaultConfig(1)
	cfg.Difficulty = 16
	c, err := chain.New(cfg, map[types.Address]uint64{alice.Address(): 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	miner := types.BytesToAddress([]byte{0xA1})
	nonce := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txs := make([]*types.Transaction, 10)
		for j := range txs {
			tx := &types.Transaction{
				Nonce: nonce, From: alice.Address(),
				To: types.BytesToAddress([]byte{2}), Value: 1, Fee: 1,
			}
			if err := crypto.SignTx(tx, alice); err != nil {
				b.Fatal(err)
			}
			txs[j] = tx
			nonce++
		}
		block, _, err := c.BuildBlock(miner, txs, uint64(i+1)*1000)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.AddBlock(block); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChainIndexedQueries times the maintained-index read paths
// (tx lookup, O(1) counters, sync locator) against a 256-block chain. The
// per-package microbenchmarks in internal/chain split these by height; this
// one keeps the composite visible next to the other substrate numbers.
func BenchmarkChainIndexedQueries(b *testing.B) {
	alice := crypto.KeypairFromSeed("bench-alice")
	cfg := chain.DefaultConfig(1)
	cfg.Difficulty = 16
	c, err := chain.New(cfg, map[types.Address]uint64{alice.Address(): 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	miner := types.BytesToAddress([]byte{0xA1})
	var probe types.Hash
	nonce := uint64(0)
	for i := 0; i < 256; i++ {
		tx := &types.Transaction{
			Nonce: nonce, From: alice.Address(),
			To: types.BytesToAddress([]byte{2}), Value: 1, Fee: 1,
		}
		if err := crypto.SignTx(tx, alice); err != nil {
			b.Fatal(err)
		}
		nonce++
		block, _, err := c.BuildBlock(miner, []*types.Transaction{tx}, uint64(i+1)*1000)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.AddBlock(block); err != nil {
			b.Fatal(err)
		}
		if i == 128 {
			probe = tx.Hash()
		}
	}
	locator := c.Locator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.FindTx(probe); err != nil {
			b.Fatal(err)
		}
		if c.ConfirmedTxCount() == 0 {
			b.Fatal("no confirmed txs")
		}
		_ = c.EmptyBlockCount()
		if _, ok := c.CommonAncestor(locator); !ok {
			b.Fatal("no common ancestor with self")
		}
	}
}

func BenchmarkTrieInsert(b *testing.B) {
	var tr trie.Trie
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("account-%04d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i%len(keys)], []byte{byte(i), byte(i >> 8)})
	}
}

func BenchmarkTrieHash(b *testing.B) {
	var tr trie.Trie
	for i := 0; i < 1024; i++ {
		tr.Put([]byte(fmt.Sprintf("account-%04d", i)), []byte{byte(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put([]byte("hot-key"), []byte{byte(i)}) // invalidate the cache
		_ = tr.Hash()
	}
}

func BenchmarkReplicatorGame(b *testing.B) {
	sizes := make([]int, 50)
	for i := range sizes {
		sizes[i] = 1 + i%9
	}
	costs := make([]float64, len(sizes))
	for i := range costs {
		costs[i] = 1
	}
	g, err := replicator.New(replicator.Config{
		Sizes: sizes, L: 50, Reward: 20, Costs: costs, MaxSlots: 50,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		_ = g.Run(rng)
	}
}

func BenchmarkCongestionGame(b *testing.B) {
	fees := make([]uint64, 200)
	rng := rand.New(rand.NewSource(1))
	for i := range fees {
		fees[i] = uint64(rng.Intn(100) + 1)
	}
	g, err := congestion.New(fees, 50)
	if err != nil {
		b.Fatal(err)
	}
	initial := make([]int, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Run(initial, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeAlgorithm1(b *testing.B) {
	infos := make([]merge.ShardInfo, 100)
	rng := rand.New(rand.NewSource(1))
	for i := range infos {
		infos[i] = merge.ShardInfo{ID: types.ShardID(i + 1), Size: 1 + rng.Intn(9)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := merge.Run(merge.Config{
			Shards: infos, L: 50, Reward: 20, CostPerShard: 1,
			Seed: int64(i), MaxSlots: 20, Subslots: 8, Eta: 0.02,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorNineShards(b *testing.B) {
	fees := make([]uint64, 200)
	for i := range fees {
		fees[i] = uint64(i%17 + 1)
	}
	plans := make([]sim.ShardPlan, 9)
	for s := range plans {
		lo, hi := s*200/9, (s+1)*200/9
		plans[s] = sim.ShardPlan{ID: types.ShardID(s), Miners: 1, Fees: fees[lo:hi]}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{Seed: int64(i)}, plans); err != nil {
			b.Fatal(err)
		}
	}
}
