package contractshard

import (
	"errors"
	"fmt"
	"testing"

	"contractshard/internal/types"
)

func newTestSystem(t *testing.T, users ...*Keypair) *System {
	t.Helper()
	alloc := map[Address]uint64{}
	for _, u := range users {
		alloc[u.Address()] = 1_000_000
	}
	s, err := NewSystem(SystemConfig{GenesisAlloc: alloc})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSystemStartsWithMaxShard(t *testing.T) {
	s := newTestSystem(t)
	if s.NumShards() != 1 {
		t.Fatalf("fresh system has %d shards", s.NumShards())
	}
	ids := s.ShardIDs()
	if len(ids) != 1 || ids[0] != MaxShard {
		t.Fatalf("shard ids: %v", ids)
	}
}

func TestRegisterContractFormsShard(t *testing.T) {
	s := newTestSystem(t)
	dest := types.BytesToAddress([]byte{0xDD})
	caddr := types.BytesToAddress([]byte{0xC1})
	id, err := s.RegisterContract(caddr, UnconditionalTransfer(dest))
	if err != nil {
		t.Fatal(err)
	}
	if id == MaxShard {
		t.Fatal("contract shard must not be the MaxShard")
	}
	if s.NumShards() != 2 {
		t.Fatalf("shards: %d", s.NumShards())
	}
	if got, ok := s.ShardOfContract(caddr); !ok || got != id {
		t.Fatal("ShardOfContract mismatch")
	}
	if _, err := s.RegisterContract(caddr, UnconditionalTransfer(dest)); !errors.Is(err, ErrContractExists) {
		t.Fatalf("duplicate registration: %v", err)
	}
	if _, err := s.RegisterContract(types.BytesToAddress([]byte{0xC2}), nil); !errors.Is(err, ErrInvalidContract) {
		t.Fatalf("empty code: %v", err)
	}
}

func TestSingleContractSenderRoutesToContractShard(t *testing.T) {
	alice := KeypairFromSeed("sys-alice")
	s := newTestSystem(t, alice)
	dest := types.BytesToAddress([]byte{0xDD})
	caddr := types.BytesToAddress([]byte{0xC1})
	id, err := s.RegisterContract(caddr, UnconditionalTransfer(dest))
	if err != nil {
		t.Fatal(err)
	}

	shard, tx, err := s.SubmitCall(alice, caddr, 100, 5, []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if shard != id {
		t.Fatalf("routed to %s, want %s", shard, id)
	}
	if tx.Nonce != 0 {
		t.Fatalf("first nonce %d", tx.Nonce)
	}
	if s.PendingCount(id) != 1 {
		t.Fatal("tx not pooled")
	}
	if s.SenderClass(alice.Address()) != "single-contract" {
		t.Fatalf("classification: %s", s.SenderClass(alice.Address()))
	}
}

func TestMultiContractSenderRoutesToMaxShard(t *testing.T) {
	carol := KeypairFromSeed("sys-carol")
	s := newTestSystem(t, carol)
	dest := types.BytesToAddress([]byte{0xDD})
	c1 := types.BytesToAddress([]byte{0xC1})
	c2 := types.BytesToAddress([]byte{0xC2})
	if _, err := s.RegisterContract(c1, UnconditionalTransfer(dest)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterContract(c2, UnconditionalTransfer(dest)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.SubmitCall(carol, c1, 10, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	shard, _, err := s.SubmitCall(carol, c2, 10, 1, []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if shard != MaxShard {
		t.Fatalf("second-contract call routed to %s, want MaxShard", shard)
	}
	if s.SenderClass(carol.Address()) != "multi-contract" {
		t.Fatalf("classification: %s", s.SenderClass(carol.Address()))
	}
}

func TestDirectTransferRoutesToMaxShard(t *testing.T) {
	bob := KeypairFromSeed("sys-bob")
	s := newTestSystem(t, bob)
	shard, _, err := s.SubmitTransfer(bob, types.BytesToAddress([]byte{0x99}), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if shard != MaxShard {
		t.Fatalf("direct transfer routed to %s", shard)
	}
	if s.SenderClass(bob.Address()) != "direct" {
		t.Fatalf("classification: %s", s.SenderClass(bob.Address()))
	}
}

func TestMineShardConfirmsContractCall(t *testing.T) {
	alice := KeypairFromSeed("sys-alice")
	s := newTestSystem(t, alice)
	dest := types.BytesToAddress([]byte{0xDD})
	caddr := types.BytesToAddress([]byte{0xC1})
	id, err := s.RegisterContract(caddr, UnconditionalTransfer(dest))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.SubmitCall(alice, caddr, 100, 5, []byte{1}); err != nil {
		t.Fatal(err)
	}
	miner := types.BytesToAddress([]byte{0xA1})
	block, err := s.MineShard(id, miner)
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Txs) != 1 || block.ShardID() != id {
		t.Fatalf("block: %d txs in %s", len(block.Txs), block.ShardID())
	}
	h, err := s.Height(id)
	if err != nil || h != 1 {
		t.Fatalf("height %d (%v)", h, err)
	}
	// The contract forwarded the escrow to dest inside the shard ledger.
	bal, err := s.BalanceIn(id, dest)
	if err != nil {
		t.Fatal(err)
	}
	if bal != 100 {
		t.Fatalf("dest balance %d", bal)
	}
	if s.PendingCount(id) != 0 {
		t.Fatal("pool not drained")
	}
}

func TestNoncesAcrossPendingTxs(t *testing.T) {
	alice := KeypairFromSeed("sys-alice")
	s := newTestSystem(t, alice)
	dest := types.BytesToAddress([]byte{0xDD})
	caddr := types.BytesToAddress([]byte{0xC1})
	id, err := s.RegisterContract(caddr, UnconditionalTransfer(dest))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_, tx, err := s.SubmitCall(alice, caddr, 10, 1, []byte{1})
		if err != nil {
			t.Fatal(err)
		}
		if tx.Nonce != uint64(i) {
			t.Fatalf("tx %d got nonce %d", i, tx.Nonce)
		}
	}
	miner := types.BytesToAddress([]byte{0xA1})
	if _, err := s.MineShard(id, miner); err != nil {
		t.Fatal(err)
	}
	// 5 txs fit one 10-tx block; all confirmed in nonce order.
	if bal, _ := s.BalanceIn(id, dest); bal != 50 {
		t.Fatalf("dest balance %d", bal)
	}
	next, err := s.NextNonce(id, alice.Address())
	if err != nil || next != 5 {
		t.Fatalf("next nonce %d (%v)", next, err)
	}
}

func TestMineUntilDrainedAcrossShards(t *testing.T) {
	users := make([]*Keypair, 6)
	for i := range users {
		users[i] = KeypairFromSeed(fmt.Sprintf("sys-user-%d", i))
	}
	s := newTestSystem(t, users...)
	dest := types.BytesToAddress([]byte{0xDD})
	var shards []ShardID
	for i := 0; i < 3; i++ {
		caddr := types.BytesToAddress([]byte{0xC0 + byte(i)})
		id, err := s.RegisterContract(caddr, UnconditionalTransfer(dest))
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, id)
		// Two dedicated users per contract: single-contract senders.
		for j := 0; j < 2; j++ {
			for k := 0; k < 12; k++ {
				if _, _, err := s.SubmitCall(users[i*2+j], caddr, 1, 1, []byte{1}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	miner := types.BytesToAddress([]byte{0xA1})
	blocks, err := s.MineUntilDrained(miner, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 24 txs per shard at 10/block: 3 blocks per shard, 9 total.
	if blocks != 9 {
		t.Fatalf("mined %d blocks, want 9", blocks)
	}
	for _, id := range shards {
		if bal, _ := s.BalanceIn(id, dest); bal != 24 {
			t.Fatalf("shard %s dest balance %d", id, bal)
		}
		if h, _ := s.Height(id); h != 3 {
			t.Fatalf("shard %s height %d", id, h)
		}
	}
}

func TestUnknownShardErrors(t *testing.T) {
	s := newTestSystem(t)
	if _, err := s.MineShard(ShardID(42), Address{}); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("mine unknown: %v", err)
	}
	if _, err := s.Height(ShardID(42)); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("height unknown: %v", err)
	}
	if _, err := s.BalanceIn(ShardID(42), Address{}); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("balance unknown: %v", err)
	}
	if _, err := s.NextNonce(ShardID(42), Address{}); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("nonce unknown: %v", err)
	}
	if _, err := s.Submit(nil); !errors.Is(err, ErrNilTransaction) {
		t.Fatalf("nil tx: %v", err)
	}
}

func TestSubmitRejectsBadSignature(t *testing.T) {
	alice := KeypairFromSeed("sys-alice")
	s := newTestSystem(t, alice)
	tx := &Transaction{From: alice.Address(), To: types.BytesToAddress([]byte{1}), Value: 1}
	if _, err := s.Submit(tx); err == nil {
		t.Fatal("unsigned tx accepted")
	}
}

func TestRegisterAfterMiningMaxShardRejected(t *testing.T) {
	bob := KeypairFromSeed("sys-bob")
	s := newTestSystem(t, bob)
	if _, _, err := s.SubmitTransfer(bob, types.BytesToAddress([]byte{0x99}), 10, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MineShard(MaxShard, types.BytesToAddress([]byte{0xA1})); err != nil {
		t.Fatal(err)
	}
	_, err := s.RegisterContract(types.BytesToAddress([]byte{0xC9}), UnconditionalTransfer(types.BytesToAddress([]byte{0xDD})))
	if err == nil {
		t.Fatal("late registration accepted")
	}
}

func TestAPIWrappers(t *testing.T) {
	// MergeShards + OptimalNewShards.
	res, err := MergeShards(MergeConfig{
		Shards: []MergeShardInfo{{ID: 1, Size: 6}, {ID: 2, Size: 7}},
		L:      10, Reward: 20, CostPerShard: 1, Seed: 3,
	})
	if err != nil || len(res.NewShards) != 1 {
		t.Fatalf("merge: %+v %v", res, err)
	}
	if OptimalNewShards([]int{6, 7}, 10) != 1 {
		t.Fatal("optimal")
	}
	// Selection + verification.
	sets, err := SelectTransactionSets(SelectionParams{Fees: []uint64{9, 8, 7}, Miners: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySelectedBlock(sets, 0, sets.PerMiner[0]); err != nil {
		t.Fatal(err)
	}
	// Unified replay.
	p := &UnifiedParams{
		MergeShards: []MergeShardInfo{{ID: 1, Size: 6}, {ID: 2, Size: 7}},
		L:           10, Reward: 20, CostPerShard: 1, MergeSeed: 3,
		TxFees: []uint64{9, 8, 7}, Miners: 2, SetSize: 1,
	}
	plan, err := p.RunMerge()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMergePlan(p, plan); err != nil {
		t.Fatal(err)
	}
	// Security calculators.
	if ShardSafety(30, 0.25) < 0.99 {
		t.Fatal("safety")
	}
	if _, err := InterShardCorruption(0.25, -1, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := IntraShardCorruption(0.25, -1, 40, 200); err != nil {
		t.Fatal(err)
	}
	// Experiment catalogue.
	if len(ExperimentIDs()) < 17 {
		t.Fatalf("experiments: %v", ExperimentIDs())
	}
	if _, err := RunExperiment("fig1d", ExperimentOptions{Quick: true}); err != nil {
		t.Fatal(err)
	}
}

func TestReceiptThroughFacade(t *testing.T) {
	alice := KeypairFromSeed("sys-alice")
	s := newTestSystem(t, alice)
	caddr := types.BytesToAddress([]byte{0xC1})
	dest := types.BytesToAddress([]byte{0xDD})
	id, err := s.RegisterContract(caddr, UnconditionalTransfer(dest))
	if err != nil {
		t.Fatal(err)
	}
	_, tx, err := s.SubmitCall(alice, caddr, 100, 5, []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MineShard(id, types.BytesToAddress([]byte{0xA1})); err != nil {
		t.Fatal(err)
	}
	r, err := s.Receipt(id, tx.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if r == nil || r.Status != types.ReceiptSuccess || !r.ContractOK {
		t.Fatalf("receipt: %+v", r)
	}
	if miss, err := s.Receipt(id, types.BytesToHash([]byte{9})); err != nil || miss != nil {
		t.Fatalf("phantom receipt: %+v %v", miss, err)
	}
	if _, err := s.Receipt(ShardID(99), tx.Hash()); err == nil {
		t.Fatal("unknown shard accepted")
	}
}

func TestProveInclusionThroughFacade(t *testing.T) {
	alice := KeypairFromSeed("sys-alice")
	s := newTestSystem(t, alice)
	caddr := types.BytesToAddress([]byte{0xC1})
	id, err := s.RegisterContract(caddr, UnconditionalTransfer(types.BytesToAddress([]byte{0xDD})))
	if err != nil {
		t.Fatal(err)
	}
	_, tx, err := s.SubmitCall(alice, caddr, 10, 1, []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MineShard(id, types.BytesToAddress([]byte{0xA1})); err != nil {
		t.Fatal(err)
	}
	proof, header, err := s.ProveInclusion(id, tx.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyTxInclusion(header.TxRoot, tx.Hash(), proof) {
		t.Fatal("facade inclusion proof rejected")
	}
	if _, _, err := s.ProveInclusion(ShardID(99), tx.Hash()); err == nil {
		t.Fatal("unknown shard accepted")
	}
}
