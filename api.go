package contractshard

import (
	"contractshard/internal/contract"
	"contractshard/internal/experiments"
	"contractshard/internal/game/replicator"
	"contractshard/internal/merge"
	"contractshard/internal/security"
	"contractshard/internal/txsel"
	"contractshard/internal/types"
	"contractshard/internal/unify"
)

// --- Contracts -------------------------------------------------------------

// UnconditionalTransfer builds the contract the paper's evaluation registers
// (Sec. VI-A): forward whatever value a call escrows straight to dest.
func UnconditionalTransfer(dest Address) []byte {
	return contract.UnconditionalTransfer(dest)
}

// ConditionalTransfer builds the Sec. II-A example: transfer the escrowed
// value to dest only while dest's balance is strictly below threshold.
func ConditionalTransfer(dest Address, threshold uint64) []byte {
	return contract.ConditionalTransfer(dest, threshold)
}

// TxInclusionProof proves a transaction's commitment under a block header.
type TxInclusionProof = types.TxInclusionProof

// VerifyTxInclusion checks an inclusion proof against a header's TxRoot.
func VerifyTxInclusion(root Hash, txHash Hash, p *TxInclusionProof) bool {
	return types.VerifyTxProof(root, txHash, p)
}

// SymmetricMergeEquilibria returns the analytic symmetric Nash equilibria
// of the merging game with n equal-size players (Sec. V-A).
func SymmetricMergeEquilibria(n, size int, reward, cost float64, L int) ([]float64, error) {
	return replicator.SymmetricEquilibria(n, size, reward, cost, L)
}

// --- Inter-shard merging (Sec. IV-A, V) -------------------------------------

// MergeShardInfo describes one small shard entering the merge.
type MergeShardInfo = merge.ShardInfo

// MergeConfig parameterizes Algorithm 1; see merge.Config.
type MergeConfig = merge.Config

// MergeResult is the merge plan Algorithm 1 produces.
type MergeResult = merge.Result

// MergedShard is one newly formed shard in a merge plan.
type MergedShard = merge.NewShard

// MergeShards runs the inter-shard merging algorithm: small shards play the
// evolutionary cooperative game (Algorithm 3) round after round until the
// remainder cannot reach the bound L.
func MergeShards(cfg MergeConfig) (*MergeResult, error) { return merge.Run(cfg) }

// OptimalNewShards is the Fig. 5(a) yardstick: total transactions over L.
func OptimalNewShards(sizes []int, L int) int { return merge.Optimal(sizes, L) }

// --- Intra-shard selection (Sec. IV-B) --------------------------------------

// SelectionParams parameterizes the transaction-selection computation.
type SelectionParams = txsel.Params

// SelectionSets is the per-miner assignment the congestion game produces.
type SelectionSets = txsel.Sets

// SelectTransactionSets runs the intra-shard congestion game (Algorithm 2)
// and expands its equilibrium into block-sized per-miner transaction sets.
func SelectTransactionSets(p SelectionParams) (*SelectionSets, error) { return txsel.Select(p) }

// VerifySelectedBlock checks that a block only contains transactions the
// unified selection assigned to its producer (Sec. IV-C).
func VerifySelectedBlock(sets *SelectionSets, miner int, blockTxs []int) error {
	return txsel.VerifyBlock(sets, miner, blockTxs)
}

// --- Parameter unification (Sec. IV-C) --------------------------------------

// UnifiedParams are the leader-broadcast inputs every miner replays locally.
type UnifiedParams = unify.Params

// VerifyMergePlan replays Algorithm 1 from unified parameters and rejects
// deviating merge claims.
func VerifyMergePlan(p *UnifiedParams, claimed *MergeResult) error {
	return unify.VerifyMergePlan(p, claimed)
}

// VerifyBlockSelection replays Algorithm 2 from unified parameters and
// rejects blocks holding transactions outside their producer's assignment.
func VerifyBlockSelection(p *UnifiedParams, miner int, blockTxs []int) error {
	return unify.VerifyBlockSelection(p, miner, blockTxs)
}

// --- Security model (Sec. III-B, IV-D) --------------------------------------

// ShardSafety returns the probability that a shard of n miners sampled with
// adversary fraction f has an honest majority (Fig. 1(d)).
func ShardSafety(n int, f float64) float64 { return security.ShardSafety(n, f) }

// InterShardCorruption evaluates Eq. (3); l < 0 selects the l→∞ limit.
func InterShardCorruption(f float64, l, newShardMiners int) (float64, error) {
	return security.InterShardCorruption(f, l, newShardMiners)
}

// IntraShardCorruption evaluates Eq. (6); l < 0 selects the l→∞ limit.
func IntraShardCorruption(f float64, l, minersPerTx, totalFees int) (float64, error) {
	return security.IntraShardCorruption(f, l, minersPerTx, totalFees)
}

// --- Evaluation harness ------------------------------------------------------

// ExperimentOptions tune an experiment run.
type ExperimentOptions = experiments.Options

// ExperimentResult is a regenerated table or figure.
type ExperimentResult = experiments.Result

// RunExperiment regenerates one of the paper's tables or figures; see
// ExperimentIDs for the catalogue and EXPERIMENTS.md for the mapping.
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentResult, error) {
	return experiments.Run(id, opts)
}

// ExperimentIDs lists every reproducible table and figure.
func ExperimentIDs() []string { return experiments.IDs() }
