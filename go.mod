module contractshard

go 1.22
