package contractshard_test

// Godoc examples for the public API — runnable documentation that go test
// verifies.

import (
	"fmt"

	contractshard "contractshard"
)

// ExampleSystem shows the end-to-end path: register a contract, submit a
// call from a single-contract sender, mine its shard, and prove inclusion.
func ExampleSystem() {
	alice := contractshard.KeypairFromSeed("ex-alice")
	sys, _ := contractshard.NewSystem(contractshard.SystemConfig{
		GenesisAlloc: map[contractshard.Address]uint64{alice.Address(): 1000},
	})
	var caddr, dest contractshard.Address
	caddr[19], dest[19] = 0xC1, 0xDD

	shard, _ := sys.RegisterContract(caddr, contractshard.UnconditionalTransfer(dest))
	_, tx, _ := sys.SubmitCall(alice, caddr, 100, 2, []byte{1})
	var miner contractshard.Address
	miner[19] = 0xA1
	block, _ := sys.MineShard(shard, miner)

	proof, header, _ := sys.ProveInclusion(shard, tx.Hash())
	fmt.Println(len(block.Txs), contractshard.VerifyTxInclusion(header.TxRoot, tx.Hash(), proof))
	// Output: 1 true
}

// ExampleMergeShards runs the inter-shard merging game on two small shards
// that together clear the bound.
func ExampleMergeShards() {
	res, _ := contractshard.MergeShards(contractshard.MergeConfig{
		Shards: []contractshard.MergeShardInfo{{ID: 1, Size: 6}, {ID: 2, Size: 7}},
		L:      10, Reward: 20, CostPerShard: 1, Seed: 3,
	})
	fmt.Println(len(res.NewShards), res.NewShards[0].Size)
	// Output: 1 13
}

// ExampleSelectTransactionSets spreads two miners over distinct
// transactions via the congestion game.
func ExampleSelectTransactionSets() {
	sets, _ := contractshard.SelectTransactionSets(contractshard.SelectionParams{
		Fees:   []uint64{10, 9},
		Miners: 2,
	})
	fmt.Println(sets.DistinctFirstRound)
	// Output: 2
}

// ExampleShardSafety evaluates the Fig. 1(d) headline.
func ExampleShardSafety() {
	fmt.Printf("%.2f\n", contractshard.ShardSafety(30, 1.0/3.0))
	// Output: 0.98
}

// ExampleSymmetricMergeEquilibria recovers the free-rider equilibria of the
// Sec. V example by hand: p² − p + 0.2 = 0.
func ExampleSymmetricMergeEquilibria() {
	eq, _ := contractshard.SymmetricMergeEquilibria(3, 6, 10, 4, 12)
	for _, p := range eq {
		if p > 0.01 && p < 0.99 {
			fmt.Printf("%.3f\n", p)
		}
	}
	// Output:
	// 0.276
	// 0.724
}
