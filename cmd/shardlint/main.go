// Command shardlint runs the repo's determinism and lock-discipline
// analyzers (internal/lint) over the given packages and fails on any
// unwaived diagnostic. It is a hard CI gate: consensus code that iterates a
// map unsorted, reads the wall clock, self-deadlocks on its own mutex, or
// drops an error does not merge.
//
// Usage:
//
//	go run ./cmd/shardlint ./...            # lint the module, human output
//	go run ./cmd/shardlint -json ./...      # machine-readable diagnostics
//	go run ./cmd/shardlint -waivers ./...   # audit every //shardlint: waiver
//
// Exit status: 0 clean, 1 diagnostics found (or, with -waivers, a waiver
// with an empty reason), 2 operational failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"contractshard/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics (or waivers) as JSON")
	waivers := flag.Bool("waivers", false, "list every //shardlint: waiver with its reason instead of linting")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: shardlint [-json] [-waivers] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers: detrange, detsource, locksafe, errdrop (see DESIGN.md \"Determinism discipline\").\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	res, err := lint.Run(cwd, patterns, lint.Config{})
	if err != nil {
		fatal(err)
	}

	if *waivers {
		// Audit mode: the full waiver inventory, plus any malformed
		// waivers (empty reason, unknown key), which stay fatal.
		bad := 0
		if *jsonOut {
			malformed := []lint.Diagnostic{}
			for _, d := range res.Diagnostics {
				if d.Analyzer == "waiver" {
					malformed = append(malformed, d)
				}
			}
			bad = len(malformed)
			emitJSON(map[string]any{"waivers": res.Waivers, "malformed": malformed})
		} else {
			for _, w := range res.Waivers {
				fmt.Printf("%s:%d: [%s] %s\n", w.File, w.Line, w.Key, w.Reason)
			}
			for _, d := range res.Diagnostics {
				if d.Analyzer == "waiver" {
					fmt.Println(d)
					bad++
				}
			}
			fmt.Printf("%d waiver(s), %d malformed\n", len(res.Waivers), bad)
		}
		if bad > 0 {
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		emitJSON(res)
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
		if n := len(res.Diagnostics); n > 0 {
			fmt.Printf("shardlint: %d diagnostic(s)\n", n)
		}
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shardlint:", err)
	os.Exit(2)
}
