// Command shardlint runs the repo's determinism and lock-discipline
// analyzers (internal/lint) over the given packages and fails on any
// unwaived diagnostic. It is a hard CI gate: consensus code that iterates a
// map unsorted, reads the wall clock, self-deadlocks on its own mutex,
// drops an error, leaks state mutations past a failure return, wraps a
// uint64 money quantity, grows a long-lived map without bound, or creates
// a cross-package lock-order cycle does not merge.
//
// Usage:
//
//	go run ./cmd/shardlint ./...            # lint the module, human output
//	go run ./cmd/shardlint -json ./...      # machine-readable diagnostics
//	go run ./cmd/shardlint -waivers ./...   # audit every //shardlint: waiver
//
// Exit status: 0 clean, 1 diagnostics found (or, with -waivers, a
// malformed waiver — empty reason or unknown key — or a stale waiver that
// suppressed nothing this run), 2 operational failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"contractshard/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics (or waivers) as JSON")
	waivers := flag.Bool("waivers", false, "list every //shardlint: waiver with its reason instead of linting")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: shardlint [-json] [-waivers] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers: detrange, detsource, locksafe, errdrop, statesafe, ovflow, growbound, lockorder\n(see DESIGN.md \"Determinism discipline\").\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	res, err := lint.Run(cwd, patterns, lint.Config{})
	if err != nil {
		fatal(err)
	}

	if *waivers {
		// Audit mode: the full waiver inventory. Fatal findings are
		// malformed waivers (empty reason, unknown key — the analyzer key
		// must exist) and stale waivers: a well-formed waiver that
		// suppressed zero diagnostics in this run excuses nothing and must
		// be deleted, or it rots into cover for a future regression.
		malformed := []lint.Diagnostic{}
		for _, d := range res.Diagnostics {
			if d.Analyzer == "waiver" {
				malformed = append(malformed, d)
			}
		}
		stale := []lint.Waiver{}
		for _, w := range res.Waivers {
			if !w.Used {
				stale = append(stale, w)
			}
		}
		if *jsonOut {
			emitJSON(map[string]any{"waivers": res.Waivers, "malformed": malformed, "stale": stale})
		} else {
			for _, w := range res.Waivers {
				mark := ""
				if !w.Used {
					mark = " STALE(suppresses nothing)"
				}
				fmt.Printf("%s:%d: [%s]%s %s\n", w.File, w.Line, w.Key, mark, w.Reason)
			}
			for _, d := range malformed {
				fmt.Println(d)
			}
			fmt.Printf("%d waiver(s), %d malformed, %d stale\n", len(res.Waivers), len(malformed), len(stale))
		}
		if len(malformed) > 0 || len(stale) > 0 {
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		emitJSON(res)
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
		if n := len(res.Diagnostics); n > 0 {
			fmt.Printf("shardlint: %d diagnostic(s)\n", n)
		}
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shardlint:", err)
	os.Exit(2)
}
