// Command secanalysis prints the paper's analytic security model
// (Sec. III-B and IV-D): the Fig. 1(d) shard-safety curve and the
// Eq. (3)–(6) corruption probabilities for configurable adversary power.
package main

import (
	"flag"
	"fmt"
	"os"

	"contractshard/internal/metrics"
	"contractshard/internal/security"
)

func main() {
	var (
		f     = flag.Float64("f", 0.25, "adversary computation fraction")
		fees  = flag.Int("fees", 200, "total transaction fees N for Eq. (4)/(6)")
		leads = flag.Int("l", -1, "consecutive adversarial leaderships (-1 = limit)")
	)
	flag.Parse()
	if *f < 0 || *f >= 1 {
		fmt.Fprintln(os.Stderr, "adversary fraction must be in [0,1)")
		os.Exit(2)
	}

	fig := metrics.Figure{
		Title:  "Fig 1(d): shard safety vs miners per shard",
		XLabel: "miners", YLabel: "safety",
	}
	for _, adv := range []float64{0.25, 1.0 / 3.0, *f} {
		s := metrics.Series{Name: fmt.Sprintf("f=%.3f", adv)}
		for _, p := range security.SafetyCurve(20, 100, 10, adv) {
			s.X = append(s.X, float64(p.Miners))
			s.Y = append(s.Y, p.Safety)
		}
		fig.Add(s)
	}
	fmt.Println(fig.String())

	tbl := metrics.Table{
		Title:   fmt.Sprintf("Corruption probabilities at f=%.3f (l=%d, N=%d fees)", *f, *leads, *fees),
		Headers: []string{"Miners/validators", "Eq.(3) inter-shard", "Eq.(6) intra-shard"},
	}
	for _, n := range []int{20, 30, 40, 50, 60, 80, 100} {
		inter, err := security.InterShardCorruption(*f, *leads, n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		intra, err := security.IntraShardCorruption(*f, *leads, n, *fees)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tbl.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.3g", inter), fmt.Sprintf("%.3g", intra))
	}
	fmt.Println(tbl.String())

	if n, err := security.MinersForInterShardTarget(0.25, 8e-6, 500); err == nil {
		fmt.Printf("Paper headline: Eq.(3) reaches 8e-6 at f=0.25 with a new shard of %d miners.\n", n)
	}
}
