package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strings"

	"contractshard/internal/metrics"
)

// delta is one benchmark's baseline-vs-candidate comparison.
type delta struct {
	Key      string  // pkg-qualified benchmark name
	Old, New float64 // ns/op
	Pct      float64 // (new-old)/old, NaN when either side is missing
	Gated    bool
	Status   string // ok | faster | REGRESSED | MISSING | new
}

// loadDoc reads one benchjson artifact.
func loadDoc(path string) (document, error) {
	var doc document
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// stripCPU removes the trailing -N GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkAddBlock-8" -> "BenchmarkAddBlock").
func stripCPU(name string) string {
	i := strings.LastIndex(name, "-")
	if i <= 0 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	if i == len(name)-1 {
		return name
	}
	return name[:i]
}

// indexDoc keys a document's ns/op metrics. The GOMAXPROCS suffix is
// stripped so a baseline recorded on an 8-core box matches a 4-core CI
// runner — except for cpu-sweep benchmarks (the same name at several -cpu
// values), which keep their full names because the suffix is the datum.
func indexDoc(doc document) map[string]float64 {
	counts := map[string]int{}
	for _, r := range doc.Results {
		counts[r.Pkg+"\x00"+stripCPU(r.Name)]++
	}
	out := map[string]float64{}
	for _, r := range doc.Results {
		ns, ok := r.Metrics["ns/op"]
		if !ok {
			continue
		}
		name := stripCPU(r.Name)
		if counts[r.Pkg+"\x00"+name] > 1 {
			name = r.Name
		}
		out[r.Pkg+": "+name] = ns
	}
	return out
}

// diffDocs compares two artifacts. A gated benchmark (name matching gate;
// nil gates everything) fails the diff when its ns/op grew more than
// threshold, or when it vanished from the candidate — a silent rename must
// not disable the gate. Ungated and improved entries are informational.
func diffDocs(oldDoc, newDoc document, threshold float64, gate *regexp.Regexp) (rows []delta, failed bool) {
	oldNS, newNS := indexDoc(oldDoc), indexDoc(newDoc)
	keys := make([]string, 0, len(oldNS)+len(newNS))
	for k := range oldNS {
		keys = append(keys, k)
	}
	for k := range newNS {
		if _, ok := oldNS[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		d := delta{Key: k, Old: oldNS[k], New: newNS[k], Pct: math.NaN()}
		d.Gated = gate == nil || gate.MatchString(k)
		oldOK := d.Old > 0
		_, newOK := newNS[k]
		switch {
		case oldOK && newOK:
			d.Pct = (d.New - d.Old) / d.Old
			switch {
			case d.Gated && d.Pct > threshold:
				d.Status, failed = "REGRESSED", true
			case d.Pct < -threshold:
				d.Status = "faster"
			default:
				d.Status = "ok"
			}
		case oldOK:
			d.Status = "MISSING"
			if d.Gated {
				failed = true
			}
		default:
			d.Status = "new"
		}
		rows = append(rows, d)
	}
	return rows, failed
}

// runDiff loads, compares and renders the two artifacts, returning whether
// the gate failed.
func runDiff(oldPath, newPath string, threshold float64, gate *regexp.Regexp, w io.Writer) (bool, error) {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		return false, err
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		return false, err
	}
	rows, failed := diffDocs(oldDoc, newDoc, threshold, gate)
	t := &metrics.Table{
		Title:   fmt.Sprintf("benchmark diff: %s -> %s (gate threshold %+.0f%%)", oldPath, newPath, threshold*100),
		Headers: []string{"benchmark", "old ns/op", "new ns/op", "delta", "gated", "status"},
	}
	fmtNS := func(v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", v)
	}
	for _, d := range rows {
		pct := "-"
		if !math.IsNaN(d.Pct) {
			pct = fmt.Sprintf("%+.1f%%", d.Pct*100)
		}
		gated := ""
		if d.Gated {
			gated = "yes"
		}
		t.AddRow(d.Key, fmtNS(d.Old), fmtNS(d.New), pct, gated, d.Status)
	}
	fmt.Fprintln(w, t.String())
	if failed {
		fmt.Fprintf(w, "FAIL: at least one gated benchmark regressed beyond %.0f%% (or went missing)\n", threshold*100)
	}
	return failed, nil
}
