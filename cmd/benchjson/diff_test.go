package main

import (
	"encoding/json"
	"os"
	"regexp"
	"strings"
	"testing"
)

func bench(pkg, name string, ns float64) result {
	return result{Name: name, Pkg: pkg, Iterations: 100, Metrics: map[string]float64{"ns/op": ns}}
}

func statuses(rows []delta) map[string]string {
	out := map[string]string{}
	for _, d := range rows {
		out[d.Key] = d.Status
	}
	return out
}

// TestDiffDocsGate pins the gate semantics: >threshold growth on a gated
// benchmark fails, growth on an ungated one does not, improvements never
// fail, and a gated benchmark vanishing from the candidate fails too.
func TestDiffDocsGate(t *testing.T) {
	oldDoc := document{Results: []result{
		bench("contractshard/internal/chain", "BenchmarkAddBlock-8", 1000),
		bench("contractshard/internal/chain", "BenchmarkOther-8", 1000),
		bench("contractshard/internal/chain", "BenchmarkReopenReplay-8", 500),
		bench("contractshard/internal/chain", "BenchmarkGone-8", 100),
	}}
	newDoc := document{Results: []result{
		bench("contractshard/internal/chain", "BenchmarkAddBlock-4", 1200), // +20%, gated
		bench("contractshard/internal/chain", "BenchmarkOther-4", 5000),    // +400%, ungated
		bench("contractshard/internal/chain", "BenchmarkReopenReplay-4", 200),
		bench("contractshard/internal/chain", "BenchmarkFresh-4", 50),
	}}
	gate := regexp.MustCompile("AddBlock|ReopenReplay|Gone")
	rows, failed := diffDocs(oldDoc, newDoc, 0.15, gate)
	if !failed {
		t.Fatal("20% regression on a gated benchmark passed")
	}
	st := statuses(rows)
	if st["contractshard/internal/chain: BenchmarkAddBlock"] != "REGRESSED" {
		t.Fatalf("AddBlock: %q", st["contractshard/internal/chain: BenchmarkAddBlock"])
	}
	if st["contractshard/internal/chain: BenchmarkOther"] != "ok" {
		t.Fatalf("ungated 5x slowdown must stay informational: %q", st["contractshard/internal/chain: BenchmarkOther"])
	}
	if st["contractshard/internal/chain: BenchmarkReopenReplay"] != "faster" {
		t.Fatalf("improvement: %q", st["contractshard/internal/chain: BenchmarkReopenReplay"])
	}
	if st["contractshard/internal/chain: BenchmarkGone"] != "MISSING" {
		t.Fatalf("vanished gated benchmark: %q", st["contractshard/internal/chain: BenchmarkGone"])
	}
	if st["contractshard/internal/chain: BenchmarkFresh"] != "new" {
		t.Fatalf("new benchmark: %q", st["contractshard/internal/chain: BenchmarkFresh"])
	}

	// Within threshold on both sides of zero: no failure, nil gate gates all.
	calm := document{Results: []result{bench("p", "BenchmarkX-8", 1100)}}
	base := document{Results: []result{bench("p", "BenchmarkX-8", 1000)}}
	if _, failed := diffDocs(base, calm, 0.15, nil); failed {
		t.Fatal("+10% within a 15% threshold failed")
	}
	if _, failed := diffDocs(base, document{Results: []result{bench("p", "BenchmarkX-8", 1200)}}, 0.15, nil); !failed {
		t.Fatal("+20% under a nil (gate-everything) regexp passed")
	}
}

// TestDiffDocsCPUSweep: the -N suffix is stripped so differing core counts
// still match, except when a benchmark ran at several -cpu values — then
// the suffix is the datum and full names are kept.
func TestDiffDocsCPUSweep(t *testing.T) {
	oldDoc := document{Results: []result{
		bench("p", "BenchmarkProcessBlock-1", 4000),
		bench("p", "BenchmarkProcessBlock-4", 1000),
		bench("p", "BenchmarkSingle-8", 700),
	}}
	newDoc := document{Results: []result{
		bench("p", "BenchmarkProcessBlock-1", 4100),
		bench("p", "BenchmarkProcessBlock-4", 1050),
		bench("p", "BenchmarkSingle-2", 720),
	}}
	rows, failed := diffDocs(oldDoc, newDoc, 0.15, nil)
	if failed {
		t.Fatal("matched sweep + renamed-suffix single benchmark failed")
	}
	st := statuses(rows)
	for _, k := range []string{"p: BenchmarkProcessBlock-1", "p: BenchmarkProcessBlock-4", "p: BenchmarkSingle"} {
		if st[k] != "ok" {
			t.Fatalf("%s: %q (all rows: %v)", k, st[k], st)
		}
	}
}

func TestStripCPU(t *testing.T) {
	cases := map[string]string{
		"BenchmarkAddBlock-8":  "BenchmarkAddBlock",
		"BenchmarkAddBlock-16": "BenchmarkAddBlock",
		"BenchmarkAddBlock":    "BenchmarkAddBlock",
		"BenchmarkAddBlock-":   "BenchmarkAddBlock-",
		"BenchmarkTop-40-8":    "BenchmarkTop-40",
		"-8":                   "-8",
	}
	for in, want := range cases {
		if got := stripCPU(in); got != want {
			t.Fatalf("stripCPU(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRunDiffRendering: the table mentions every benchmark and the FAIL
// trailer appears exactly when the gate trips.
func TestRunDiffRendering(t *testing.T) {
	dir := t.TempDir()
	writeDoc := func(name string, doc document) string {
		path := dir + "/" + name
		raw, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := writeDoc("old.json", document{Results: []result{bench("p", "BenchmarkAddBlock-8", 1000)}})
	newPath := writeDoc("new.json", document{Results: []result{bench("p", "BenchmarkAddBlock-8", 2000)}})
	var b strings.Builder
	failed, err := runDiff(oldPath, newPath, 0.15, nil, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("2x regression passed")
	}
	out := b.String()
	if !strings.Contains(out, "BenchmarkAddBlock") || !strings.Contains(out, "+100.0%") || !strings.Contains(out, "FAIL") {
		t.Fatalf("diff table incomplete:\n%s", out)
	}
}
