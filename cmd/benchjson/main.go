// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so CI can publish benchmark numbers as a machine-
// readable artifact (BENCH_chain.json) instead of a log to eyeball.
//
// Usage:
//
//	go test -bench . -run '^$' ./internal/chain/ | benchjson > BENCH_chain.json
//
// Output from several `go test -bench` runs can be concatenated on stdin:
// each package's preamble updates the current "pkg", which is recorded on
// every following result, so one artifact can merge benchmarks from
// multiple packages (CI merges ./internal/chain and the repo root).
//
// Each benchmark line ("BenchmarkFoo-8  100  12345 ns/op  67 B/op") becomes
// one result object with its metrics keyed by unit; the goos/goarch/cpu
// preamble lines are captured into the environment map. Non-benchmark lines
// (PASS, ok, test logs) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Environment map[string]string `json:"environment"`
	Results     []result          `json:"results"`
}

func main() {
	doc := document{
		Environment: map[string]string{},
		Results:     []result{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := "" // the package whose preamble was seen most recently
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				doc.Environment[key] = strings.TrimSpace(v)
			}
		}
		if v, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(v)
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a benchmark name alone on its line, not a result row
		}
		r := result{Name: fields[0], Pkg: pkg, Iterations: iters, Metrics: map[string]float64{}}
		// The remainder alternates value/unit: "12345 ns/op 67 B/op ...".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			r.Metrics[fields[i+1]] = v
		}
		doc.Results = append(doc.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
