// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so CI can publish benchmark numbers as a machine-
// readable artifact (BENCH_chain.json) instead of a log to eyeball.
//
// Usage:
//
//	go test -bench . -run '^$' ./internal/chain/ | benchjson > BENCH_chain.json
//
// Output from several `go test -bench` runs can be concatenated on stdin:
// each package's preamble updates the current "pkg", which is recorded on
// every following result, so one artifact can merge benchmarks from
// multiple packages (CI merges ./internal/chain and the repo root).
//
// Each benchmark line ("BenchmarkFoo-8  100  12345 ns/op  67 B/op") becomes
// one result object with its metrics keyed by unit; the goos/goarch/cpu
// preamble lines are captured into the environment map. Non-benchmark lines
// (PASS, ok, test logs) are ignored.
//
// With -diff the command instead compares two artifacts and acts as CI's
// perf-regression gate:
//
//	benchjson -diff -threshold 0.15 -gate 'AddBlock|ProcessBlock' BENCH_chain.json BENCH_new.json
//
// It prints a per-benchmark delta table and exits 1 when any benchmark
// matching -gate got more than -threshold slower (ns/op), or disappeared
// from the candidate artifact — a rename must not silently disable the
// gate. Improvements and ungated changes are informational.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Environment map[string]string `json:"environment"`
	Results     []result          `json:"results"`
}

func main() {
	var (
		diffMode  = false
		threshold = 0.15
		gatePat   = ""
	)
	// Tiny hand-rolled flag scan: the default (stdin conversion) mode must
	// keep accepting a bare `benchjson < bench.txt` with no arguments.
	args := os.Args[1:]
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch {
		case args[0] == "-diff":
			diffMode = true
			args = args[1:]
		case args[0] == "-threshold" && len(args) > 1:
			v, err := strconv.ParseFloat(args[1], 64)
			if err != nil || v <= 0 {
				fmt.Fprintln(os.Stderr, "benchjson: -threshold wants a positive fraction, e.g. 0.15")
				os.Exit(2)
			}
			threshold = v
			args = args[2:]
		case args[0] == "-gate" && len(args) > 1:
			gatePat = args[1]
			args = args[2:]
		default:
			fmt.Fprintf(os.Stderr, "benchjson: unknown flag %s\n", args[0])
			os.Exit(2)
		}
	}
	if diffMode {
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff [-threshold 0.15] [-gate regexp] OLD.json NEW.json")
			os.Exit(2)
		}
		var gate *regexp.Regexp
		if gatePat != "" {
			var err error
			if gate, err = regexp.Compile(gatePat); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: bad -gate:", err)
				os.Exit(2)
			}
		}
		failed, err := runDiff(args[0], args[1], threshold, gate, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	doc := document{
		Environment: map[string]string{},
		Results:     []result{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := "" // the package whose preamble was seen most recently
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				doc.Environment[key] = strings.TrimSpace(v)
			}
		}
		if v, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(v)
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a benchmark name alone on its line, not a result row
		}
		r := result{Name: fields[0], Pkg: pkg, Iterations: iters, Metrics: map[string]float64{}}
		// The remainder alternates value/unit: "12345 ns/op 67 B/op ...".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			r.Metrics[fields[i+1]] = v
		}
		doc.Results = append(doc.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
