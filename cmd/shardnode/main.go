// Command shardnode runs an in-process multi-shard network end to end: it
// registers contracts (each forming a shard), lets users of the three
// Fig. 1 sender classes submit transactions, mines every shard to
// completion, and prints the resulting ledgers — a one-command demo of the
// contract-centric sharding pipeline.
//
// With -gossip it instead runs the miner runtime of Sec. III-C over the p2p
// substrate: epoch-assigned miners gossip transactions and blocks in either
// synchronous or asynchronous delivery mode, optionally with injected loss
// and duplication, and the per-miner and network counters are printed so
// the two modes can be compared (-net async -loss 0.2).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	contractshard "contractshard"
	"contractshard/internal/chain"
	"contractshard/internal/chainsync"
	"contractshard/internal/contract"
	"contractshard/internal/crypto"
	"contractshard/internal/epoch"
	"contractshard/internal/node"
	"contractshard/internal/p2p"
	"contractshard/internal/sharding"
	"contractshard/internal/types"
)

func main() {
	var (
		contracts = flag.Int("contracts", 3, "number of contracts/shards")
		users     = flag.Int("users", 6, "number of users")
		txs       = flag.Int("txs", 40, "transactions to inject")

		gossip    = flag.Bool("gossip", false, "run the p2p miner-gossip demo instead of the in-process system demo")
		netMode   = flag.String("net", "sync", "gossip delivery mode: sync or async")
		miners    = flag.Int("miners", 8, "gossip demo: number of epoch-assigned miners")
		loss      = flag.Float64("loss", 0, "gossip demo: per-link loss probability (async only)")
		dup       = flag.Float64("dup", 0, "gossip demo: per-link duplicate probability (async only)")
		partition = flag.Int("partition", 0, "gossip demo: cut this many shard miners off during mining, heal before catch-up (async only)")
		seed      = flag.Int64("seed", 1, "gossip demo: fault-model RNG seed (async only)")
	)
	flag.Parse()
	var err error
	if *gossip {
		err = runGossip(*netMode, *miners, *txs, *loss, *dup, *partition, *seed)
	} else {
		err = run(*contracts, *users, *txs)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(contracts, users, txs int) error {
	keys := make([]*contractshard.Keypair, users)
	alloc := map[contractshard.Address]uint64{}
	for i := range keys {
		keys[i] = contractshard.KeypairFromSeed(fmt.Sprintf("node-user-%d", i))
		alloc[keys[i].Address()] = 1_000_000
	}
	sys, err := contractshard.NewSystem(contractshard.SystemConfig{GenesisAlloc: alloc})
	if err != nil {
		return err
	}

	dest := types.BytesToAddress([]byte{0xDD})
	addrs := make([]contractshard.Address, contracts)
	for i := range addrs {
		addrs[i] = types.BytesToAddress([]byte{0xC0, byte(i)})
		id, err := sys.RegisterContract(addrs[i], contractshard.UnconditionalTransfer(dest))
		if err != nil {
			return err
		}
		fmt.Printf("contract %s -> %s\n", addrs[i], id)
	}

	for i := 0; i < txs; i++ {
		u := keys[i%users]
		switch {
		case i%users == users-1:
			// One user transacts directly: a MaxShard sender.
			if _, _, err := sys.SubmitTransfer(u, keys[(i+1)%users].Address(), 5, 1); err != nil {
				return err
			}
		default:
			// Everyone else sticks to one home contract.
			c := addrs[(i%users)%contracts]
			if _, _, err := sys.SubmitCall(u, c, 10, 2, []byte{1}); err != nil {
				return err
			}
		}
	}

	miner := types.BytesToAddress([]byte{0xA1})
	blocks, err := sys.MineUntilDrained(miner, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\nmined %d blocks across %d shards\n\n", blocks, sys.NumShards())

	for _, id := range sys.ShardIDs() {
		h, err := sys.Height(id)
		if err != nil {
			return err
		}
		bal, err := sys.BalanceIn(id, dest)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s height=%d destBalance=%d\n", id, h, bal)
	}
	fmt.Println("\nsender classes:")
	for i, u := range keys {
		fmt.Printf("  user %d: %s\n", i, sys.SenderClass(u.Address()))
	}
	return nil
}

// runGossip exercises the node.Miner runtime over the p2p substrate in the
// chosen delivery mode and reports what every miner saw. Under injected
// faults (-loss/-dup/-partition) a catch-up phase runs after mining: every
// shard miner syncs from its peers until the shard reconverges, and the
// per-node chain-sync counters are printed.
func runGossip(mode string, nMiners, nTxs int, loss, dup float64, partition int, seed int64) error {
	var network *p2p.Network
	faulty := loss > 0 || dup > 0 || partition > 0
	switch mode {
	case "sync":
		if faulty {
			return fmt.Errorf("shardnode: fault injection needs -net async")
		}
		network = p2p.NewNetwork()
	case "async":
		network = p2p.NewAsyncNetwork(p2p.AsyncConfig{
			Seed:        seed,
			DefaultLink: p2p.LinkFault{Loss: loss, Duplicate: dup},
		})
	default:
		return fmt.Errorf("shardnode: unknown -net mode %q (sync|async)", mode)
	}
	defer network.Close()

	dir := sharding.NewDirectory()
	caddr := types.BytesToAddress([]byte{0xC1})
	dest := types.BytesToAddress([]byte{0xDD})
	shard := dir.Register(caddr)

	parts := make([]epoch.Participant, nMiners)
	for i := range parts {
		parts[i] = epoch.Participant{
			Key:  crypto.KeypairFromSeed(fmt.Sprintf("gossip-miner-%d", i)),
			Seed: []byte{byte(i)},
		}
	}
	out, err := epoch.Run(1, parts, map[types.ShardID]int{types.MaxShard: 50, shard: 50})
	if err != nil {
		return err
	}

	users := make([]*crypto.Keypair, 4)
	alloc := map[types.Address]uint64{}
	for i := range users {
		users[i] = crypto.KeypairFromSeed(fmt.Sprintf("gossip-user-%d", i))
		alloc[users[i].Address()] = 1_000_000
	}
	code := map[types.Address][]byte{caddr: contract.UnconditionalTransfer(dest)}

	var cluster []*node.Miner
	for i, p := range parts {
		assigned, _ := out.ShardOf(p.Key.Public)
		cc := chain.DefaultConfig(assigned)
		cc.Difficulty = 16
		m, err := node.New(network, p2p.NodeID(fmt.Sprintf("miner-%d", i)), node.Config{
			Key: p.Key, Shard: assigned,
			Randomness: out.Randomness, Fractions: out.Fractions,
			ChainConfig: cc, GenesisAlloc: alloc, Contracts: code,
			Directory: dir,
			Sync:      chainsync.Config{Timeout: 50 * time.Millisecond, Seed: int64(i)},
		})
		if err != nil {
			return err
		}
		cluster = append(cluster, m)
	}

	var producer *node.Miner
	for _, m := range cluster {
		if m.Shard() == shard {
			producer = m
			break
		}
	}
	if producer == nil {
		return fmt.Errorf("shardnode: epoch left shard %s without miners; re-run with more -miners", shard)
	}

	// -partition: the last N shard miners (never the producer) lose every
	// link for the whole mining phase — the worst case for gossip, the
	// showcase for catch-up.
	var cutIDs []p2p.NodeID
	if partition > 0 {
		for i := len(cluster) - 1; i >= 0 && len(cutIDs) < partition; i-- {
			if cluster[i].Shard() == shard && cluster[i] != producer {
				cutIDs = append(cutIDs, p2p.NodeID(fmt.Sprintf("miner-%d", i)))
			}
		}
		for _, cut := range cutIDs {
			for i := range cluster {
				if id := p2p.NodeID(fmt.Sprintf("miner-%d", i)); id != cut {
					network.Partition(id, cut)
				}
			}
		}
	}

	for i := 0; i < nTxs; i++ {
		u := users[i%len(users)]
		tx := &types.Transaction{
			Nonce: uint64(i / len(users)), From: u.Address(), To: caddr,
			Value: 10, Fee: uint64(1 + i%7), Data: []byte{1},
		}
		if err := crypto.SignTx(tx, u); err != nil {
			return err
		}
		if err := producer.SubmitTx(tx); err != nil {
			return err
		}
	}
	network.Drain()
	for producer.Pending() > 0 {
		if _, err := producer.Mine(); err != nil {
			return err
		}
		network.Drain()
	}

	fmt.Printf("gossip demo: %d miners, %d txs, net=%s loss=%.2f dup=%.2f partition=%d\n\n",
		nMiners, nTxs, mode, loss, dup, partition)
	shardMiners := func() (ms []*node.Miner) {
		for _, m := range cluster {
			if m.Shard() == shard {
				ms = append(ms, m)
			}
		}
		return ms
	}()
	printHeights := func(label string) {
		fmt.Printf("%s %s heights:", label, shard)
		for _, m := range shardMiners {
			fmt.Printf(" %d", m.Height())
		}
		fmt.Println()
	}

	if faulty {
		printHeights("before catch-up,")
		for _, cut := range cutIDs {
			for i := range cluster {
				if id := p2p.NodeID(fmt.Sprintf("miner-%d", i)); id != cut {
					network.Heal(id, cut)
				}
			}
		}
		// Sweep catch-up over the shard until every miner agrees on the head
		// and no orphans dangle; lossy links make individual rounds time out,
		// so a few sweeps may be needed.
		converged := func() bool {
			for _, m := range shardMiners {
				if m.Head().Hash() != shardMiners[0].Head().Hash() || m.NeedsSync() {
					return false
				}
			}
			return true
		}
		sweeps := 0
		for ; sweeps < 20 && !converged(); sweeps++ {
			for _, m := range shardMiners {
				_, _ = m.CatchUp()
			}
		}
		printHeights(fmt.Sprintf("after %d catch-up sweeps,", sweeps))
		if !converged() {
			// Extreme loss can defeat the sweep budget (a 90%-lossy link gives
			// a request round trip a 1% success rate); report, don't fail —
			// the counters below show how far catch-up got.
			fmt.Println("WARNING: shard did not reconverge within the sweep budget; raise -miners or lower -loss")
		}
		fmt.Println()
	}

	for i, m := range cluster {
		s := m.Stats()
		fmt.Printf("miner-%-2d shard=%-8s height=%-3d pooled=%-3d accepted=%-3d otherShard=%-3d dup=%-3d orphaned=%-3d rejected=%d\n",
			i, m.Shard(), m.Height(), s.TxsPooled, s.BlocksAccepted, s.BlocksOtherShard, s.BlocksDuplicate, s.BlocksOrphaned, s.BlocksRejected)
	}
	if faulty {
		labels := make([]string, 0, len(shardMiners))
		stats := make([]chainsync.Stats, 0, len(shardMiners))
		for i, m := range cluster {
			if m.Shard() == shard {
				labels = append(labels, fmt.Sprintf("miner-%d", i))
				stats = append(stats, m.SyncStats())
			}
		}
		fmt.Printf("\n%s", chainsync.StatsTable("chain sync (per shard miner)", labels, stats))
	}
	st := network.Stats()
	fmt.Printf("\nnetwork: total=%d crossShard=%d dropped=%d redelivered=%d\n",
		st.Total, st.CrossShard, st.Dropped, st.Redelivered)
	topics := make([]string, 0, len(st.ByTopic))
	for topic := range st.ByTopic {
		topics = append(topics, topic)
	}
	sort.Strings(topics)
	for _, topic := range topics {
		fmt.Printf("  topic %-12s %d\n", topic, st.ByTopic[topic])
	}
	return nil
}
