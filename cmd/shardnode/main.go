// Command shardnode runs an in-process multi-shard network end to end: it
// registers contracts (each forming a shard), lets users of the three
// Fig. 1 sender classes submit transactions, mines every shard to
// completion, and prints the resulting ledgers — a one-command demo of the
// contract-centric sharding pipeline.
//
// With -gossip it instead runs the miner runtime of Sec. III-C over the p2p
// substrate: epoch-assigned miners gossip transactions and blocks in either
// synchronous or asynchronous delivery mode, optionally with injected loss
// and duplication, and the per-miner and network counters are printed so
// the two modes can be compared (-net async -loss 0.2).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	contractshard "contractshard"
	"contractshard/internal/chain"
	"contractshard/internal/chainsync"
	"contractshard/internal/contract"
	"contractshard/internal/crypto"
	"contractshard/internal/epoch"
	"contractshard/internal/node"
	"contractshard/internal/p2p"
	"contractshard/internal/sharding"
	"contractshard/internal/store"
	"contractshard/internal/types"
	"contractshard/internal/xshard"
)

func main() {
	var (
		contracts = flag.Int("contracts", 3, "number of contracts/shards")
		users     = flag.Int("users", 6, "number of users")
		txs       = flag.Int("txs", 40, "transactions to inject")

		gossip    = flag.Bool("gossip", false, "run the p2p miner-gossip demo instead of the in-process system demo")
		netMode   = flag.String("net", "sync", "gossip delivery mode: sync or async")
		miners    = flag.Int("miners", 8, "gossip demo: number of epoch-assigned miners")
		loss      = flag.Float64("loss", 0, "gossip demo: per-link loss probability (async only)")
		dup       = flag.Float64("dup", 0, "gossip demo: per-link duplicate probability (async only)")
		partition = flag.Int("partition", 0, "gossip demo: cut this many shard miners off during mining, heal before catch-up (async only)")
		seed      = flag.Int64("seed", 1, "gossip demo: fault-model RNG seed (async only)")
		datadir   = flag.String("datadir", "", "gossip demo: persist each miner's ledger under this directory; a restart with the same directory recovers the chains")
		xshard    = flag.Bool("xshard", false, "gossip demo: register a second contract shard and complete a cross-shard receipts transfer (burn -> relay -> mint) after mining")
		xfinality = flag.Uint64("xfinality", 1, "gossip demo: confirmation depth a burn needs on the source chain before it relays (with -xshard)")
	)
	flag.Parse()
	var err error
	if *gossip {
		err = runGossip(*netMode, *miners, *txs, *loss, *dup, *partition, *seed, *datadir, *xshard, *xfinality)
	} else {
		err = run(*contracts, *users, *txs)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(contracts, users, txs int) error {
	keys := make([]*contractshard.Keypair, users)
	alloc := map[contractshard.Address]uint64{}
	for i := range keys {
		keys[i] = contractshard.KeypairFromSeed(fmt.Sprintf("node-user-%d", i))
		alloc[keys[i].Address()] = 1_000_000
	}
	sys, err := contractshard.NewSystem(contractshard.SystemConfig{GenesisAlloc: alloc})
	if err != nil {
		return err
	}

	dest := types.BytesToAddress([]byte{0xDD})
	addrs := make([]contractshard.Address, contracts)
	for i := range addrs {
		addrs[i] = types.BytesToAddress([]byte{0xC0, byte(i)})
		id, err := sys.RegisterContract(addrs[i], contractshard.UnconditionalTransfer(dest))
		if err != nil {
			return err
		}
		fmt.Printf("contract %s -> %s\n", addrs[i], id)
	}

	for i := 0; i < txs; i++ {
		u := keys[i%users]
		switch {
		case i%users == users-1:
			// One user transacts directly: a MaxShard sender.
			if _, _, err := sys.SubmitTransfer(u, keys[(i+1)%users].Address(), 5, 1); err != nil {
				return err
			}
		default:
			// Everyone else sticks to one home contract.
			c := addrs[(i%users)%contracts]
			if _, _, err := sys.SubmitCall(u, c, 10, 2, []byte{1}); err != nil {
				return err
			}
		}
	}

	miner := types.BytesToAddress([]byte{0xA1})
	blocks, err := sys.MineUntilDrained(miner, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\nmined %d blocks across %d shards\n\n", blocks, sys.NumShards())

	for _, id := range sys.ShardIDs() {
		h, err := sys.Height(id)
		if err != nil {
			return err
		}
		bal, err := sys.BalanceIn(id, dest)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s height=%d destBalance=%d\n", id, h, bal)
	}
	fmt.Println("\nsender classes:")
	for i, u := range keys {
		fmt.Printf("  user %d: %s\n", i, sys.SenderClass(u.Address()))
	}
	return nil
}

// runGossip exercises the node.Miner runtime over the p2p substrate in the
// chosen delivery mode and reports what every miner saw. Under injected
// faults (-loss/-dup/-partition) a catch-up phase runs after mining: every
// shard miner syncs from its peers until the shard reconverges, and the
// per-node chain-sync counters are printed.
//
// With -datadir every miner persists its ledger to a file store under that
// directory: a re-run with the same -datadir recovers each chain to its
// previous head before mining continues, and SIGINT/SIGTERM shut the stores
// down cleanly (flushed, head snapshotted) before exiting.
// With -xshard a second contract shard joins the epoch and, once normal
// mining drains, one cross-shard receipts transfer runs end to end: a burn
// mined on the first shard, buried -xfinality blocks deep, relayed (header
// announcement + mint candidate), and the mint mined on the second shard —
// no MaxShard involvement.
func runGossip(mode string, nMiners, nTxs int, loss, dup float64, partition int, seed int64, datadir string, xshardDemo bool, xfinality uint64) error {
	var network *p2p.Network
	faulty := loss > 0 || dup > 0 || partition > 0
	switch mode {
	case "sync":
		if faulty {
			return fmt.Errorf("shardnode: fault injection needs -net async")
		}
		network = p2p.NewNetwork()
	case "async":
		network = p2p.NewAsyncNetwork(p2p.AsyncConfig{
			Seed:        seed,
			DefaultLink: p2p.LinkFault{Loss: loss, Duplicate: dup},
		})
	default:
		return fmt.Errorf("shardnode: unknown -net mode %q (sync|async)", mode)
	}
	defer network.Close()

	dir := sharding.NewDirectory()
	caddr := types.BytesToAddress([]byte{0xC1})
	dest := types.BytesToAddress([]byte{0xDD})
	shard := dir.Register(caddr)
	fractions := map[types.ShardID]int{types.MaxShard: 50, shard: 50}
	var shard2 types.ShardID
	if xshardDemo {
		shard2 = dir.Register(types.BytesToAddress([]byte{0xC2}))
		fractions = map[types.ShardID]int{types.MaxShard: 34, shard: 33, shard2: 33}
	}

	parts := make([]epoch.Participant, nMiners)
	for i := range parts {
		parts[i] = epoch.Participant{
			Key:  crypto.KeypairFromSeed(fmt.Sprintf("gossip-miner-%d", i)),
			Seed: []byte{byte(i)},
		}
	}
	out, err := epoch.Run(1, parts, fractions)
	if err != nil {
		return err
	}

	users := make([]*crypto.Keypair, 4)
	alloc := map[types.Address]uint64{}
	for i := range users {
		users[i] = crypto.KeypairFromSeed(fmt.Sprintf("gossip-user-%d", i))
		alloc[users[i].Address()] = 1_000_000
	}
	code := map[types.Address][]byte{caddr: contract.UnconditionalTransfer(dest)}

	var cluster []*node.Miner
	for i, p := range parts {
		assigned, _ := out.ShardOf(p.Key.Public)
		cc := chain.DefaultConfig(assigned)
		cc.Difficulty = 16
		var st store.Store
		if datadir != "" {
			st, err = store.Open(filepath.Join(datadir, fmt.Sprintf("miner-%d", i)))
			if err != nil {
				return err
			}
			// Durable miners bound their resident states; the hot window and
			// checkpoint cadence keep recovery replay short.
			cc.StateHistory = 32
			cc.FinalityDepth = 64
		}
		m, err := node.New(network, p2p.NodeID(fmt.Sprintf("miner-%d", i)), node.Config{
			Key: p.Key, Shard: assigned,
			Randomness: out.Randomness, Fractions: out.Fractions,
			ChainConfig: cc, GenesisAlloc: alloc, Contracts: code,
			Directory: dir, Store: st, XShardFinality: xfinality,
			Sync: chainsync.Config{Timeout: 50 * time.Millisecond, Seed: int64(i)},
		})
		if err != nil {
			return err
		}
		if datadir != "" && m.Height() > 0 {
			fmt.Printf("miner-%d: recovered shard=%s height=%d head=%s\n", i, m.Shard(), m.Height(), m.Head().Hash())
		}
		cluster = append(cluster, m)
	}

	// Shutdown path shared by normal completion and SIGINT/SIGTERM: flush
	// and close every durable ledger exactly once, logging the final heads.
	var shutdownOnce sync.Once
	shutdown := func() {
		shutdownOnce.Do(func() {
			for i, m := range cluster {
				if err := m.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "miner-%d: close: %v\n", i, err)
				}
			}
			if datadir != "" {
				for i, m := range cluster {
					fmt.Printf("miner-%d: final head shard=%s height=%d hash=%s\n", i, m.Shard(), m.Height(), m.Head().Hash())
				}
			}
		})
	}
	defer shutdown()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "shardnode: %v: flushing stores\n", sig)
		shutdown()
		os.Exit(0)
	}()

	var producer *node.Miner
	for _, m := range cluster {
		if m.Shard() == shard {
			producer = m
			break
		}
	}
	if producer == nil {
		return fmt.Errorf("shardnode: epoch left shard %s without miners; re-run with more -miners", shard)
	}

	// Recovered miners can legitimately disagree by a block or two (a kill
	// can land mid-broadcast), so reconverge the shard through chain sync
	// before mining resumes.
	if datadir != "" {
		for sweep := 0; sweep < 5; sweep++ {
			for _, m := range cluster {
				_, _ = m.CatchUp()
			}
			agreed := true
			for _, m := range cluster {
				if m.Shard() == shard && m.Head().Hash() != producer.Head().Hash() {
					agreed = false
				}
			}
			if agreed {
				break
			}
		}
	}

	// -partition: the last N shard miners (never the producer) lose every
	// link for the whole mining phase — the worst case for gossip, the
	// showcase for catch-up.
	var cutIDs []p2p.NodeID
	if partition > 0 {
		for i := len(cluster) - 1; i >= 0 && len(cutIDs) < partition; i-- {
			if cluster[i].Shard() == shard && cluster[i] != producer {
				cutIDs = append(cutIDs, p2p.NodeID(fmt.Sprintf("miner-%d", i)))
			}
		}
		for _, cut := range cutIDs {
			for i := range cluster {
				if id := p2p.NodeID(fmt.Sprintf("miner-%d", i)); id != cut {
					network.Partition(id, cut)
				}
			}
		}
	}

	// Nonces continue from the producer's (possibly recovered) ledger, so a
	// -datadir re-run submits fresh transactions instead of replaying spent
	// nonces.
	baseNonce := make(map[types.Address]uint64, len(users))
	for _, u := range users {
		baseNonce[u.Address()] = producer.NonceOf(u.Address())
	}
	for i := 0; i < nTxs; i++ {
		u := users[i%len(users)]
		tx := &types.Transaction{
			Nonce: baseNonce[u.Address()] + uint64(i/len(users)), From: u.Address(), To: caddr,
			Value: 10, Fee: uint64(1 + i%7), Data: []byte{1},
		}
		if err := crypto.SignTx(tx, u); err != nil {
			return err
		}
		if err := producer.SubmitTx(tx); err != nil {
			return err
		}
	}
	network.Drain()
	// Guard against a wedged pool (e.g. unprocessable transactions): stop
	// once a few consecutive blocks confirm nothing.
	for stalls := 0; producer.Pending() > 0 && stalls < 3; {
		block, err := producer.Mine()
		if err != nil {
			return err
		}
		if len(block.Txs) == 0 {
			stalls++
		} else {
			stalls = 0
		}
		network.Drain()
	}

	if xshardDemo {
		if err := runXShardDemo(network, cluster, users[0], users[1].Address(), shard, shard2, xfinality); err != nil {
			return err
		}
	}

	fmt.Printf("gossip demo: %d miners, %d txs, net=%s loss=%.2f dup=%.2f partition=%d\n\n",
		nMiners, nTxs, mode, loss, dup, partition)
	shardMiners := func() (ms []*node.Miner) {
		for _, m := range cluster {
			if m.Shard() == shard {
				ms = append(ms, m)
			}
		}
		return ms
	}()
	printHeights := func(label string) {
		fmt.Printf("%s %s heights:", label, shard)
		for _, m := range shardMiners {
			fmt.Printf(" %d", m.Height())
		}
		fmt.Println()
	}

	if faulty {
		printHeights("before catch-up,")
		for _, cut := range cutIDs {
			for i := range cluster {
				if id := p2p.NodeID(fmt.Sprintf("miner-%d", i)); id != cut {
					network.Heal(id, cut)
				}
			}
		}
		// Sweep catch-up over the shard until every miner agrees on the head
		// and no orphans dangle; lossy links make individual rounds time out,
		// so a few sweeps may be needed.
		converged := func() bool {
			for _, m := range shardMiners {
				if m.Head().Hash() != shardMiners[0].Head().Hash() || m.NeedsSync() {
					return false
				}
			}
			return true
		}
		sweeps := 0
		for ; sweeps < 20 && !converged(); sweeps++ {
			for _, m := range shardMiners {
				_, _ = m.CatchUp()
			}
		}
		printHeights(fmt.Sprintf("after %d catch-up sweeps,", sweeps))
		if !converged() {
			// Extreme loss can defeat the sweep budget (a 90%-lossy link gives
			// a request round trip a 1% success rate); report, don't fail —
			// the counters below show how far catch-up got.
			fmt.Println("WARNING: shard did not reconverge within the sweep budget; raise -miners or lower -loss")
		}
		fmt.Println()
	}

	for i, m := range cluster {
		s := m.Stats()
		fmt.Printf("miner-%-2d shard=%-8s height=%-3d pooled=%-3d accepted=%-3d otherShard=%-3d dup=%-3d orphaned=%-3d rejected=%d\n",
			i, m.Shard(), m.Height(), s.TxsPooled, s.BlocksAccepted, s.BlocksOtherShard, s.BlocksDuplicate, s.BlocksOrphaned, s.BlocksRejected)
	}
	if faulty {
		labels := make([]string, 0, len(shardMiners))
		stats := make([]chainsync.Stats, 0, len(shardMiners))
		for i, m := range cluster {
			if m.Shard() == shard {
				labels = append(labels, fmt.Sprintf("miner-%d", i))
				stats = append(stats, m.SyncStats())
			}
		}
		fmt.Printf("\n%s", chainsync.StatsTable("chain sync (per shard miner)", labels, stats))
	}
	st := network.Stats()
	fmt.Printf("\nnetwork: total=%d crossShard=%d dropped=%d redelivered=%d\n",
		st.Total, st.CrossShard, st.Dropped, st.Redelivered)
	topics := make([]string, 0, len(st.ByTopic))
	for topic := range st.ByTopic {
		topics = append(topics, topic)
	}
	sort.Strings(topics)
	for _, topic := range topics {
		fmt.Printf("  topic %-12s %d\n", topic, st.ByTopic[topic])
	}
	return nil
}

// runXShardDemo completes one receipts-method transfer between the two
// contract shards: burn mined on src, buried to finality, relayed, mint
// mined on dst. The MaxShard's miners see only gossip they ignore.
func runXShardDemo(network *p2p.Network, cluster []*node.Miner, sender *crypto.Keypair, recv types.Address, src, dst types.ShardID, finality uint64) error {
	producerIn := func(s types.ShardID) *node.Miner {
		for _, m := range cluster {
			if m.Shard() == s {
				return m
			}
		}
		return nil
	}
	srcMiner, dstMiner := producerIn(src), producerIn(dst)
	if srcMiner == nil || dstMiner == nil {
		return fmt.Errorf("shardnode: -xshard needs miners in %s and %s; re-run with more -miners", src, dst)
	}

	const value, fee = 500, 1
	burn := xshard.NewBurn(sender.Address(), recv, value, fee, srcMiner.NonceOf(sender.Address()), src, dst)
	if err := crypto.SignTx(burn, sender); err != nil {
		return err
	}
	if err := srcMiner.SubmitTx(burn); err != nil {
		return err
	}
	network.Drain()
	if _, err := srcMiner.Mine(); err != nil {
		return err
	}
	for i := uint64(0); i < finality; i++ { // bury the burn to relay depth
		if _, err := srcMiner.Mine(); err != nil {
			return err
		}
	}
	network.Drain()
	relayed, err := srcMiner.RelayXShard()
	if err != nil {
		return err
	}
	network.Drain()
	mintBlk, err := dstMiner.Mine()
	if err != nil {
		return err
	}
	network.Drain()
	fmt.Printf("xshard demo: burn %d (fee %d) on %s -> relayed %d mint(s) at finality %d -> %s mined %d tx(s)\n",
		value, fee, src, relayed, finality, dst, len(mintBlk.Txs))
	fmt.Printf("xshard demo: recipient balance on %s = %d, headers booked by %s's miner = %d\n\n",
		dst, dstMiner.BalanceOf(recv), dst, dstMiner.XHeaders())
	return nil
}
