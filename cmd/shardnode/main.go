// Command shardnode runs an in-process multi-shard network end to end: it
// registers contracts (each forming a shard), lets users of the three
// Fig. 1 sender classes submit transactions, mines every shard to
// completion, and prints the resulting ledgers — a one-command demo of the
// contract-centric sharding pipeline.
package main

import (
	"flag"
	"fmt"
	"os"

	contractshard "contractshard"
	"contractshard/internal/types"
)

func main() {
	var (
		contracts = flag.Int("contracts", 3, "number of contracts/shards")
		users     = flag.Int("users", 6, "number of users")
		txs       = flag.Int("txs", 40, "transactions to inject")
	)
	flag.Parse()
	if err := run(*contracts, *users, *txs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(contracts, users, txs int) error {
	keys := make([]*contractshard.Keypair, users)
	alloc := map[contractshard.Address]uint64{}
	for i := range keys {
		keys[i] = contractshard.KeypairFromSeed(fmt.Sprintf("node-user-%d", i))
		alloc[keys[i].Address()] = 1_000_000
	}
	sys, err := contractshard.NewSystem(contractshard.SystemConfig{GenesisAlloc: alloc})
	if err != nil {
		return err
	}

	dest := types.BytesToAddress([]byte{0xDD})
	addrs := make([]contractshard.Address, contracts)
	for i := range addrs {
		addrs[i] = types.BytesToAddress([]byte{0xC0, byte(i)})
		id, err := sys.RegisterContract(addrs[i], contractshard.UnconditionalTransfer(dest))
		if err != nil {
			return err
		}
		fmt.Printf("contract %s -> %s\n", addrs[i], id)
	}

	for i := 0; i < txs; i++ {
		u := keys[i%users]
		switch {
		case i%users == users-1:
			// One user transacts directly: a MaxShard sender.
			if _, _, err := sys.SubmitTransfer(u, keys[(i+1)%users].Address(), 5, 1); err != nil {
				return err
			}
		default:
			// Everyone else sticks to one home contract.
			c := addrs[(i%users)%contracts]
			if _, _, err := sys.SubmitCall(u, c, 10, 2, []byte{1}); err != nil {
				return err
			}
		}
	}

	miner := types.BytesToAddress([]byte{0xA1})
	blocks, err := sys.MineUntilDrained(miner, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\nmined %d blocks across %d shards\n\n", blocks, sys.NumShards())

	for _, id := range sys.ShardIDs() {
		h, err := sys.Height(id)
		if err != nil {
			return err
		}
		bal, err := sys.BalanceIn(id, dest)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s height=%d destBalance=%d\n", id, h, bal)
	}
	fmt.Println("\nsender classes:")
	for i, u := range keys {
		fmt.Printf("  user %d: %s\n", i, sys.SenderClass(u.Address()))
	}
	return nil
}
