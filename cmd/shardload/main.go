// Command shardload runs the deterministic soak harness (internal/soak):
// seed a large funded account set across many shard chains, replay
// Zipf-skewed transfer and hot-contract streams, push cross-shard value
// around the ring through burns and relayed mints, and print per-phase
// throughput, block latency percentiles and allocation statistics.
//
// The defaults are the acceptance-scale run — a million accounts over 32
// shards. Identical flags (and in particular the same -seed) always finish
// with identical per-shard state roots; -smoke shrinks the run to the
// tier-1 test's scale for a quick check.
//
// Usage:
//
//	go run ./cmd/shardload                     # 10^6 accounts, 32 shards
//	go run ./cmd/shardload -smoke              # 10^4 accounts, 4 shards
//	go run ./cmd/shardload -accounts 100000 -shards 8 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"

	"contractshard/internal/soak"
)

func main() {
	cfg := soak.DefaultConfig()
	flag.IntVar(&cfg.Accounts, "accounts", cfg.Accounts, "total funded accounts, split over the shards")
	flag.IntVar(&cfg.Shards, "shards", cfg.Shards, "number of shard chains")
	flag.IntVar(&cfg.Rounds, "rounds", cfg.Rounds, "Zipf-transfer blocks per shard")
	flag.IntVar(&cfg.HotRounds, "hot-rounds", cfg.HotRounds, "hot-contract blocks per shard")
	flag.IntVar(&cfg.TxsPerBlock, "txs-per-block", cfg.TxsPerBlock, "transactions injected and mined per block")
	flag.IntVar(&cfg.XShardRounds, "xshard-rounds", cfg.XShardRounds, "cross-shard burn rounds per shard")
	flag.IntVar(&cfg.BurnsPerRound, "burns", cfg.BurnsPerRound, "burns per shard per xshard round")
	finality := flag.Uint64("finality", cfg.Finality, "xshard header-book finality depth")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "seed for keys, senders, fees — fixes the final state roots")
	flag.Float64Var(&cfg.ZipfS, "zipf", cfg.ZipfS, "sender-popularity Zipf skew (<=1 selects 1.2)")
	flag.IntVar(&cfg.FeeMax, "fee-max", cfg.FeeMax, "per-sender fee cap")
	flag.IntVar(&cfg.ExecWorkers, "workers", cfg.ExecWorkers, "parallel-execution workers per shard (0 = serial)")
	flag.IntVar(&cfg.StateHistory, "state-history", cfg.StateHistory, "resident post-states per shard")
	smoke := flag.Bool("smoke", false, "shrink to the tier-1 smoke scale (10^4 accounts, 4 shards)")
	quiet := flag.Bool("q", false, "suppress progress lines, print only the final report")
	flag.Parse()

	cfg.Finality = *finality
	if *smoke {
		cfg.Accounts, cfg.Shards = 10_000, 4
		cfg.Rounds, cfg.HotRounds = 3, 2
		cfg.TxsPerBlock, cfg.XShardRounds, cfg.BurnsPerRound = 50, 2, 8
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}

	res, err := soak.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shardload: %v\n", err)
		os.Exit(1)
	}
	res.Report(os.Stdout)
}
