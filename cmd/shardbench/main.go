// Command shardbench regenerates the paper's evaluation: every table and
// figure of "On Sharding Open Blockchains with Smart Contracts" (ICDE 2020)
// has a runner, and this tool prints the reproduced rows and series.
//
// Usage:
//
//	shardbench -list               # catalogue of experiments
//	shardbench -exp fig3a          # one experiment
//	shardbench -exp all            # everything (default)
//	shardbench -exp fig3c -reps 20 # more repetitions
//	shardbench -quick              # reduced workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"contractshard/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id or 'all'")
		seed  = flag.Int64("seed", 1, "random seed")
		reps  = flag.Int("reps", 0, "override repetition count (0 = experiment default)")
		quick = flag.Bool("quick", false, "reduced workload sizes")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Title)
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Reps: *reps, Quick: *quick}
	var runners []experiments.Runner
	if *exp == "all" {
		runners = experiments.All()
	} else {
		r, ok := experiments.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	for _, r := range runners {
		start := time.Now()
		res, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s — %s (%.2fs)\n\n", res.ID, r.Title, time.Since(start).Seconds())
		fmt.Println(res.Output)
		keys := make([]string, 0, len(res.Summary))
		for k := range res.Summary {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-28s %.6g\n", k, res.Summary[k])
		}
		fmt.Println()
	}
}
