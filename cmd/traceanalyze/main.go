// Command traceanalyze inspects a transaction workload through the paper's
// lens: how many senders fall into each Fig. 1 class, what fraction of the
// traffic contract-centric sharding can parallelize, and the Amdahl bound
// that fraction implies.
//
// Feed it a CSV dump of real transactions (sender,to,is_contract,fee — e.g.
// exported from the public BigQuery Ethereum dataset the paper cites), or
// let it generate a synthetic Zipf trace:
//
//	traceanalyze -csv transactions.csv
//	traceanalyze -txs 50000 -users 2000 -contracts 100 -direct 0.2 -multi 0.3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"contractshard/internal/metrics"
	"contractshard/internal/workload"
)

func main() {
	var (
		csvPath   = flag.String("csv", "", "CSV trace (sender,to,is_contract,fee); empty = synthetic")
		users     = flag.Int("users", 1000, "synthetic: users")
		contracts = flag.Int("contracts", 50, "synthetic: contracts")
		txs       = flag.Int("txs", 20000, "synthetic: transactions")
		direct    = flag.Float64("direct", 0.1, "synthetic: direct-transfer fraction")
		multi     = flag.Float64("multi", 0.2, "synthetic: multi-contract user fraction")
		seed      = flag.Int64("seed", 1, "synthetic: random seed")
	)
	flag.Parse()

	var events []workload.TraceEvent
	var err error
	if *csvPath != "" {
		f, ferr := os.Open(*csvPath)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		defer f.Close() //shardlint:errdrop read-only file; a close error cannot lose data
		events, err = workload.LoadCSVTrace(f)
	} else {
		events, err = workload.Trace(rand.New(rand.NewSource(*seed)), workload.TraceConfig{
			Users: *users, Contracts: *contracts, Txs: *txs,
			DirectFraction: *direct, MultiFraction: *multi,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	stats := workload.AnalyzeTrace(events)
	tbl := metrics.Table{
		Title:   "Workload through the contract-centric sharding lens (Fig. 1 classes)",
		Headers: []string{"Metric", "Value"},
	}
	tbl.AddRow("transactions", fmt.Sprintf("%d", stats.Events))
	tbl.AddRow("contract calls", fmt.Sprintf("%d", stats.ContractEvents))
	tbl.AddRow("senders", fmt.Sprintf("%d", stats.Senders))
	tbl.AddRow("  single-contract senders", fmt.Sprintf("%d", stats.SingleContract))
	tbl.AddRow("  multi-contract senders", fmt.Sprintf("%d", stats.MultiContract))
	tbl.AddRow("  direct-transfer senders", fmt.Sprintf("%d", stats.DirectSenders))
	tbl.AddRow("shardable transactions", fmt.Sprintf("%d", stats.ShardableEvents))
	f := stats.ShardableFraction()
	tbl.AddRow("shardable fraction", fmt.Sprintf("%.3f", f))
	if f < 1 {
		tbl.AddRow("Amdahl speedup bound", fmt.Sprintf("%.1fx", 1/(1-f)))
	} else {
		tbl.AddRow("Amdahl speedup bound", "unbounded")
	}
	fmt.Println(tbl.String())
}
